"""Failure injection: corrupted, truncated, and hostile streams.

The decoder's contract has two layers:

* for ANY byte sequence it either returns an array or raises a typed
  :class:`CuSZp2Error` -- never an uncontrolled IndexError / ValueError
  from deep inside NumPy;
* for a format-v2 stream (the default), every corruption is additionally
  *detected*: the decode either raises a typed error or is bit-identical
  to the clean decode.  Silent garbage is a bug, asserted against here.
"""

import numpy as np

from tests.helpers import seeded_rng
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compress, decompress
from repro.core.errors import CuSZp2Error
from repro.core.random_access import RandomAccessor
from repro.faults import BurstErasure, Truncation


def make_stream(seed=0, n=3000):
    rng = seeded_rng(seed)
    data = np.cumsum(rng.normal(size=n)).astype(np.float32)
    return compress(data, rel=1e-3, mode="outlier")


BASE_STREAM = make_stream()
CLEAN_DECODE = decompress(BASE_STREAM)


def _decode_or_typed_error(buf):
    try:
        out = decompress(buf)
        assert isinstance(out, np.ndarray)
    except CuSZp2Error:
        pass  # typed failure is the other acceptable outcome


def _detected_or_harmless(buf):
    """The v2 contract: typed error, or a decode identical to the clean one."""
    try:
        out = decompress(buf)
    except CuSZp2Error:
        return
    assert out.shape == CLEAN_DECODE.shape and np.array_equal(out, CLEAN_DECODE), (
        "corrupted v2 stream decoded silently to different values"
    )


class TestTruncation:
    @pytest.mark.parametrize("keep", [0, 1, 10, 51, 52, 100, 500])
    def test_truncated_prefixes(self, keep):
        with pytest.raises(CuSZp2Error):
            decompress(BASE_STREAM[:keep])

    def test_every_truncation_point_is_safe(self):
        # Sweep a stride of truncation lengths over the whole stream.
        for keep in range(0, BASE_STREAM.size, 97):
            _decode_or_typed_error(BASE_STREAM[:keep])

    def test_extra_garbage_after_payload(self):
        # Trailing bytes beyond the described payload: tolerated or typed.
        extended = np.concatenate([BASE_STREAM, np.full(64, 0xAB, dtype=np.uint8)])
        _decode_or_typed_error(extended)


class TestCorruption:
    @given(st.integers(0, int(BASE_STREAM.size) - 1), st.integers(0, 7))
    @settings(max_examples=200, deadline=None)
    def test_single_bit_flip_is_detected(self, pos, bit):
        # CRC32 detects ALL single-bit errors: no flip may decode silently.
        buf = BASE_STREAM.copy()
        buf[pos] ^= np.uint8(1 << bit)
        _detected_or_harmless(buf)

    @given(st.integers(0, int(BASE_STREAM.size) - 1), st.integers(1, 255))
    @settings(max_examples=100, deadline=None)
    def test_single_byte_rewrite_is_detected(self, pos, delta):
        buf = BASE_STREAM.copy()
        buf[pos] = (int(buf[pos]) + delta) % 256
        _detected_or_harmless(buf)

    @given(st.lists(st.integers(0, int(BASE_STREAM.size) - 1), min_size=1, max_size=16), st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_multi_byte_corruption(self, positions, pyrandom):
        buf = BASE_STREAM.copy()
        for p in positions:
            buf[p] = pyrandom.randrange(256)
        _decode_or_typed_error(buf)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_injected_truncation_is_detected(self, seed):
        corrupt = Truncation(seed=seed).apply(BASE_STREAM)
        _detected_or_harmless(corrupt)

    @given(st.integers(0, 2**31 - 1), st.sampled_from([8, 64, 512]))
    @settings(max_examples=60, deadline=None)
    def test_injected_burst_is_detected(self, seed, burst):
        corrupt = BurstErasure(seed=seed, burst=burst, value=0).apply(BASE_STREAM)
        _detected_or_harmless(corrupt)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_injected_random_burst_is_detected(self, seed):
        corrupt = BurstErasure(seed=seed, burst=128, value=None).apply(BASE_STREAM)
        _detected_or_harmless(corrupt)

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_bytes(self, raw):
        _decode_or_typed_error(np.frombuffer(raw, dtype=np.uint8))

    def test_all_zero_buffer(self):
        with pytest.raises(CuSZp2Error):
            decompress(np.zeros(1000, dtype=np.uint8))

    def test_all_ff_buffer(self):
        with pytest.raises(CuSZp2Error):
            decompress(np.full(1000, 0xFF, dtype=np.uint8))


class TestRandomAccessorHostility:
    @given(st.integers(0, int(BASE_STREAM.size) - 1), st.integers(1, 255))
    @settings(max_examples=100, deadline=None)
    def test_accessor_construction_and_reads(self, pos, delta):
        buf = BASE_STREAM.copy()
        buf[pos] = (int(buf[pos]) + delta) % 256
        try:
            ra = RandomAccessor(buf)
            ra.decode_block(min(5, ra.nblocks - 1))
        except CuSZp2Error:
            pass

    def test_offsets_claiming_huge_payload(self):
        # Force every offset byte to the maximum-size pattern: the payload
        # section cannot satisfy it -> typed error.
        buf = BASE_STREAM.copy()
        from repro.core import stream as stream_mod

        header, offsets, _ = stream_mod.split(buf)
        buf[stream_mod.HEADER_SIZE : stream_mod.HEADER_SIZE + offsets.size] = 0xFF
        with pytest.raises(CuSZp2Error):
            decompress(buf)


class TestBaselineDecoderSafety:
    @given(st.integers(0, 2000), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_fzgpu_corruption(self, pos, delta):
        from repro.baselines import FZGPU
        from repro.core.quantize import ErrorBound

        codec = FZGPU(ErrorBound.relative(1e-3))
        rng = seeded_rng(1)
        buf = codec.compress(np.cumsum(rng.normal(size=2000)).astype(np.float32)).copy()
        buf[pos % buf.size] = (int(buf[pos % buf.size]) + delta) % 256
        try:
            out = codec.decompress(buf)
            assert isinstance(out, np.ndarray)
        except CuSZp2Error:
            pass

    @given(st.binary(min_size=0, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_cuzfp_arbitrary_bytes(self, raw):
        from repro.baselines import CuZFP

        try:
            CuZFP(8).decompress(np.frombuffer(raw, dtype=np.uint8))
        except CuSZp2Error:
            pass


class TestArchiveAndTileHostility:
    @given(st.integers(0, 5000), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_archive_corruption(self, pos, delta):
        from repro.core.archive import DatasetArchive, pack

        rng = seeded_rng(2)
        buf = pack(
            {"a": rng.normal(size=1500).astype(np.float32),
             "b": rng.normal(size=800).astype(np.float32)},
            1e-2,
        ).copy()
        buf[pos % buf.size] = (int(buf[pos % buf.size]) + delta) % 256
        try:
            ar = DatasetArchive(buf)
            for name in ar.names:
                ar.extract(name)
        except (CuSZp2Error, KeyError):
            pass  # typed/structured failures only (decode errors are wrapped)

    @given(st.integers(0, 3000), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_tile_accessor_corruption(self, pos, delta):
        from repro.core.tile_access import TileAccessor

        rng = seeded_rng(3)
        vol = np.cumsum(rng.normal(size=(16, 16, 16)), axis=0).astype(np.float32)
        buf = compress(vol, rel=1e-2, predictor_ndim=3, block=64).copy()
        buf[pos % buf.size] = (int(buf[pos % buf.size]) + delta) % 256
        try:
            ta = TileAccessor(buf)
            ta.decode_tile((0, 0, 0))
        except CuSZp2Error:
            pass
