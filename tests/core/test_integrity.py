"""Format-v2 integrity: checksum layout, detection, and recovery.

The contract (ISSUE: integrity-checked stream format v2): every byte of a
v2 stream is covered by exactly one CRC32 (header CRC / TOC CRC / one
per-block-group CRC), so any single-bit flip is detected; ``recover`` mode
reconstructs every intact block group bit-identically and sentinel-fills
the corrupt ones, reporting what happened in a structured
:class:`CorruptionReport`.
"""

import zlib

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro import compress, decompress
from repro.core import (
    CorruptionReport,
    IntegrityError,
    RandomAccessor,
    recover_stream,
    verify_stream,
)
from repro.core import stream as stream_mod
from repro.core.errors import CuSZp2Error


def small_stream(n=2000, group_blocks=8, seed=0, **kw):
    rng = seeded_rng(seed)
    data = np.cumsum(rng.normal(size=n)).astype(np.float32)
    return data, compress(data, rel=1e-3, mode="outlier", group_blocks=group_blocks, **kw)


class TestLayout:
    def test_version_byte_and_header_crc(self):
        _, buf = small_stream()
        assert buf[4] == stream_mod.VERSION == 2
        stored = int.from_bytes(bytes(buf[52:56]), "little")
        assert stored == zlib.crc32(bytes(buf[:52]))

    def test_section_parse_roundtrip(self):
        _, buf = small_stream(group_blocks=8)
        header = stream_mod.StreamHeader.unpack(buf)
        section = stream_mod.parse_integrity_section(buf, header.nblocks)
        assert section.group_blocks == 8
        assert section.ngroups == -(-header.nblocks // 8)
        assert section.size == stream_mod.integrity_section_size(section.ngroups)
        bounds = section.payload_bounds()
        assert bounds[0] == 0 and bounds.size == section.ngroups + 1
        _, sec2, offsets, payload = stream_mod.split_ex(buf)
        assert int(bounds[-1]) == payload.size

    def test_overhead_under_half_percent(self, smooth_f32):
        # Default group size: integrity adds one 12B record per 4096 blocks.
        buf = compress(smooth_f32, rel=1e-3, mode="outlier")
        header = stream_mod.StreamHeader.unpack(buf)
        section = stream_mod.parse_integrity_section(buf, header.nblocks)
        assert section.size / buf.size < 0.005

    def test_v1_assemble_has_no_section(self):
        _, buf = small_stream()
        header, section, offsets, payload = stream_mod.split_ex(buf)
        v1_header = stream_mod.StreamHeader(
            mode=header.mode, dtype=header.dtype, predictor_ndim=header.predictor_ndim,
            block=header.block, nelems=header.nelems, eb_abs=header.eb_abs,
            dims=header.dims, version=stream_mod.V1,
        )
        v1 = stream_mod.assemble(v1_header, offsets, payload)
        assert v1[4] == 1
        assert v1.size == buf.size - section.size


class TestDetection:
    def test_exhaustive_single_bit_flips_all_detected(self):
        # Every bit of a small stream: detection must be total, not sampled.
        data, buf = small_stream(n=400, group_blocks=4)
        clean = decompress(buf)
        missed = []
        for pos in range(buf.size):
            for bit in range(8):
                corrupt = buf.copy()
                corrupt[pos] ^= np.uint8(1 << bit)
                try:
                    out = decompress(corrupt)
                except CuSZp2Error:
                    continue
                if not np.array_equal(out, clean):
                    missed.append((pos, bit))
        assert not missed, f"silent single-bit corruptions: {missed[:10]}"

    def test_verify_clean_stream(self):
        _, buf = small_stream()
        report = verify_stream(buf)
        assert isinstance(report, CorruptionReport)
        assert report.ok and report.header_ok and report.toc_ok
        assert report.corrupt_groups == ()

    def test_verify_localizes_damage_to_one_group(self):
        _, buf = small_stream(n=2000, group_blocks=8)
        _, section, offsets, payload = stream_mod.split_ex(buf)
        # flip one payload byte in group 2
        bounds = section.payload_bounds()
        pos = buf.size - payload.size + int(bounds[2])
        corrupt = buf.copy()
        corrupt[pos] ^= 1
        report = verify_stream(corrupt)
        assert not report.ok and report.recoverable
        assert report.corrupt_groups == (2,)

    def test_verify_flags_truncation(self):
        _, buf = small_stream()
        report = verify_stream(buf[:-40])
        assert not report.ok
        assert report.truncated_bytes == 40

    def test_integrity_error_carries_report(self):
        _, buf = small_stream()
        corrupt = buf.copy()
        corrupt[-1] ^= 0x80
        with pytest.raises(IntegrityError) as ei:
            decompress(corrupt)
        assert ei.value.report is not None
        assert not ei.value.report.ok

    def test_v1_stream_has_no_checksums(self):
        _, buf = small_stream()
        header, section, offsets, payload = stream_mod.split_ex(buf)
        v1_header = stream_mod.StreamHeader(
            mode=header.mode, dtype=header.dtype, predictor_ndim=header.predictor_ndim,
            block=header.block, nelems=header.nelems, eb_abs=header.eb_abs,
            dims=header.dims, version=stream_mod.V1,
        )
        v1 = stream_mod.assemble(v1_header, offsets, payload)
        report = verify_stream(v1)
        assert report.ok and not report.has_checksums
        with pytest.raises(IntegrityError):
            decompress(v1, integrity="verify")  # explicit verify demands v2


class TestRecovery:
    def corrupt_one_group(self, group=3, n=4000, group_blocks=8):
        data, buf = small_stream(n=n, group_blocks=group_blocks)
        clean = decompress(buf)
        _, section, offsets, payload = stream_mod.split_ex(buf)
        bounds = section.payload_bounds()
        pos = buf.size - payload.size + int(bounds[group])
        corrupt = buf.copy()
        corrupt[pos] ^= 0x10
        return data, clean, corrupt, group_blocks

    def test_recover_intact_groups_bit_identical(self):
        data, clean, corrupt, G = self.corrupt_one_group()
        out, report = recover_stream(corrupt)
        assert report.corrupt_groups == (3,)
        L = 32
        mask = np.ones(out.size, dtype=bool)
        for lo, hi in report.corrupt_block_ranges():
            mask[lo * L : hi * L] = False
        assert np.array_equal(out[mask], clean[mask])
        assert np.all(np.isnan(out[~mask]))

    def test_decompress_on_corruption_recover(self):
        _, clean, corrupt, _ = self.corrupt_one_group()
        out = decompress(corrupt, on_corruption="recover")
        assert out.shape == clean.shape
        assert np.isnan(out).any()
        good = ~np.isnan(out)
        assert np.array_equal(out[good], clean[good])

    def test_recover_completes_decompress_span(self):
        # the recover path returns early from decompress; its span must
        # still carry the epilogue attributes instead of exiting half-set
        from repro.obs.trace import Tracer, activate, deactivate

        _, _, corrupt, _ = self.corrupt_one_group()
        tr = Tracer()
        activate(tr)
        try:
            out = decompress(corrupt, on_corruption="recover")
        finally:
            deactivate()
        [span] = tr.find("codec.decompress")
        assert span.done
        assert span.attrs["recovered"] is True
        assert span.attrs["bytes_out"] == out.nbytes

    def test_recover_clean_stream_is_lossless(self):
        _, buf = small_stream()
        out, report = recover_stream(buf)
        assert report.ok
        assert np.array_equal(out, decompress(buf))

    def test_recover_refuses_broken_header(self):
        _, buf = small_stream()
        # A header flip that still parses (low eb mantissa bit): the header
        # CRC catches it and recover refuses -- geometry is untrusted.
        corrupt = buf.copy()
        corrupt[21] ^= 0x01
        with pytest.raises(IntegrityError):
            recover_stream(corrupt)
        # A flip that breaks parsing itself is still a typed error.
        corrupt2 = buf.copy()
        corrupt2[30] ^= 0xFF  # dims field now contradicts nelems
        with pytest.raises(CuSZp2Error):
            recover_stream(corrupt2)

    def test_accessor_recover_mode(self):
        data, clean, corrupt, G = self.corrupt_one_group()
        with pytest.raises(IntegrityError):
            RandomAccessor(corrupt)
        ra = RandomAccessor(corrupt, on_corruption="recover")
        assert not ra.report.ok
        bad_lo = 3 * G
        assert not ra.block_ok(bad_lo)
        assert ra.block_ok(0)
        blk = ra.decode_block(0)
        assert np.array_equal(blk, clean[:32])
        nanblk = ra.decode_block(bad_lo)
        assert np.all(np.isnan(nanblk))

    def test_rewrite_keeps_stream_verifiable(self, smooth_f32):
        buf = compress(smooth_f32, rel=1e-3, mode="outlier", group_blocks=16)
        ra = RandomAccessor(buf)
        new_vals = np.linspace(0.0, 1.0, 32, dtype=np.float32)
        buf2 = ra.rewrite_block(5, new_vals)
        report = verify_stream(buf2)
        assert report.ok, report.summary()
        assert np.allclose(RandomAccessor(buf2).decode_block(5), new_vals, atol=ra.header.eb_abs * 1.01)


class TestRatioRegression:
    def test_ratio_cost_below_half_percent(self, smooth_f32):
        v2 = compress(smooth_f32, rel=1e-3, mode="outlier")
        header, section, offsets, payload = stream_mod.split_ex(v2)
        v1_size = v2.size - section.size
        assert (v2.size - v1_size) / v1_size < 0.005
