"""Unit tests for random access into compressed streams (Section VI-B)."""

import numpy as np
import pytest

from repro import RandomAccessor, compress, decompress
from repro.core.errors import RandomAccessError


@pytest.fixture
def stream_and_recon(rng):
    data = np.cumsum(rng.normal(size=10_000)).astype(np.float32)
    buf = compress(data, rel=1e-3, mode="outlier")
    return buf, decompress(buf)


class TestDecodeBlock:
    def test_matches_full_decompression(self, stream_and_recon):
        buf, full = stream_and_recon
        ra = RandomAccessor(buf)
        for idx in (0, 1, 17, ra.nblocks - 1):
            blk = ra.decode_block(idx)
            lo = idx * ra.block
            assert np.array_equal(blk, full[lo : lo + ra.block])

    def test_partial_final_block(self, rng):
        data = rng.normal(size=100).astype(np.float32)  # 100 = 3*32 + 4
        buf = compress(data, rel=1e-3)
        ra = RandomAccessor(buf)
        last = ra.decode_block(3)
        assert last.shape == (4,)
        assert np.array_equal(last, decompress(buf)[96:])

    def test_negative_index_wraps(self, stream_and_recon):
        buf, full = stream_and_recon
        ra = RandomAccessor(buf)
        assert np.array_equal(ra.decode_block(-1), ra.decode_block(ra.nblocks - 1))

    def test_out_of_range_raises(self, stream_and_recon):
        ra = RandomAccessor(stream_and_recon[0])
        with pytest.raises(RandomAccessError):
            ra.decode_block(ra.nblocks)


class TestDecodeBlocks:
    def test_batch_matches_full(self, stream_and_recon, rng):
        buf, full = stream_and_recon
        ra = RandomAccessor(buf)
        idx = rng.choice(ra.nblocks, size=40, replace=False)
        rows = ra.decode_blocks(idx)
        for k, i in enumerate(idx):
            assert np.array_equal(rows[k], full[i * 32 : (i + 1) * 32])

    def test_duplicate_indices_allowed(self, stream_and_recon):
        ra = RandomAccessor(stream_and_recon[0])
        rows = ra.decode_blocks(np.array([5, 5, 5]))
        assert np.array_equal(rows[0], rows[1])

    def test_bad_indices_raise(self, stream_and_recon):
        ra = RandomAccessor(stream_and_recon[0])
        with pytest.raises(RandomAccessError):
            ra.decode_blocks(np.array([0, ra.nblocks]))


class TestDecodeRange:
    @pytest.mark.parametrize("lo,hi", [(0, 10), (30, 35), (31, 33), (0, 10_000), (9_990, 10_000), (100, 100)])
    def test_ranges(self, stream_and_recon, lo, hi):
        buf, full = stream_and_recon
        ra = RandomAccessor(buf)
        assert np.array_equal(ra.decode_range(lo, hi), full[lo:hi])

    def test_invalid_range_raises(self, stream_and_recon):
        ra = RandomAccessor(stream_and_recon[0])
        with pytest.raises(RandomAccessError):
            ra.decode_range(-1, 5)
        with pytest.raises(RandomAccessError):
            ra.decode_range(0, 10_001)


class TestMisc:
    def test_block_for_element(self, stream_and_recon):
        ra = RandomAccessor(stream_and_recon[0])
        assert ra.block_for_element(0) == (0, 0)
        assert ra.block_for_element(33) == (1, 1)
        with pytest.raises(RandomAccessError):
            ra.block_for_element(10_000)

    def test_payload_bytes_touched_is_small(self, stream_and_recon):
        # The point of Fig. 20: accessing one block touches a tiny fraction
        # of the stream, which is why normalized throughput is TB-level.
        buf, _ = stream_and_recon
        ra = RandomAccessor(buf)
        touched = ra.payload_bytes_touched(np.array([7]))
        assert touched < buf.size / 50

    def test_multi_dim_stream_rejected(self, rng):
        data = np.cumsum(rng.normal(size=(32, 32)), axis=0).astype(np.float32)
        buf = compress(data, rel=1e-3, predictor_ndim=2, block=64)
        with pytest.raises(RandomAccessError):
            RandomAccessor(buf)

    def test_zero_blocks_random_access(self, sparse_f32):
        buf = compress(sparse_f32, rel=1e-2)
        full = decompress(buf)
        ra = RandomAccessor(buf)
        rows = ra.decode_blocks(np.arange(ra.nblocks))
        assert np.array_equal(rows.reshape(-1)[: sparse_f32.size], full)
