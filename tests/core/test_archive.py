"""Unit tests for the multi-field dataset archive."""

import numpy as np
import pytest

from repro import compress
from repro.core.archive import MAGIC, DatasetArchive, pack, pack_dataset
from repro.core.errors import StreamFormatError

from tests.helpers import assert_error_bounded, value_range


@pytest.fixture
def fields(rng):
    return {
        "temperature": np.cumsum(rng.normal(size=4000)).astype(np.float32),
        "pressure": rng.normal(size=2000).astype(np.float32),
        "humidity": np.zeros(3000, dtype=np.float32),
    }


class TestPackExtract:
    def test_round_trip_all_fields(self, fields):
        buf = pack(fields, 1e-3)
        ar = DatasetArchive(buf)
        assert set(ar.names) == set(fields)
        out = ar.extract_all()
        for name, data in fields.items():
            eb = 1e-3 * max(value_range(data), 1.0 if data.max() == data.min() else value_range(data))
            if value_range(data) > 0:
                assert_error_bounded(data, out[name], 1e-3 * value_range(data))
            assert out[name].shape == data.shape

    def test_streams_identical_to_standalone(self, fields):
        buf = pack(fields, 1e-3, mode="outlier")
        ar = DatasetArchive(buf)
        for name, data in fields.items():
            standalone = compress(data, rel=1e-3, mode="outlier")
            assert np.array_equal(ar.stream(name), standalone), name

    def test_random_access_inside_archive(self, fields):
        ar = DatasetArchive(pack(fields, 1e-3))
        ra = ar.accessor("temperature")
        full = ar.extract("temperature")
        assert np.array_equal(ra.decode_block(3), full[96:128])

    def test_unknown_field(self, fields):
        ar = DatasetArchive(pack(fields, 1e-3))
        with pytest.raises(KeyError):
            ar.stream("vorticity")

    def test_absolute_bound_and_plain_mode(self, fields):
        ar = DatasetArchive(pack(fields, 0.25, mode="plain"))
        assert len(ar.names) == 3
        # per-field absolute bound? pack() treats a float as REL; use
        # ErrorBound for ABS:
        from repro.core.quantize import ErrorBound

        ar2 = DatasetArchive(pack(fields, ErrorBound.absolute(0.25)))
        for name, data in fields.items():
            assert_error_bounded(data, ar2.extract(name), 0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pack({}, 1e-3)

    def test_unicode_names(self, rng):
        data = {"champ-énergie": rng.normal(size=100).astype(np.float32)}
        ar = DatasetArchive(pack(data, 1e-2))
        assert ar.names == ["champ-énergie"]
        ar.extract("champ-énergie")


class TestFormatSafety:
    def test_bad_magic(self):
        with pytest.raises(StreamFormatError):
            DatasetArchive(np.zeros(100, dtype=np.uint8))

    def test_truncated_toc(self, fields):
        buf = pack(fields, 1e-3)
        with pytest.raises(StreamFormatError):
            DatasetArchive(buf[: len(MAGIC) + 5])

    def test_truncated_stream(self, fields):
        buf = pack(fields, 1e-3)
        with pytest.raises(StreamFormatError):
            DatasetArchive(buf[:-50])

    def test_accepts_bytes(self, fields):
        buf = pack(fields, 1e-3)
        ar = DatasetArchive(buf.tobytes())
        assert set(ar.names) == set(fields)


class TestDatasetPacking:
    def test_pack_registry_dataset(self):
        buf = pack_dataset("QMCPack", 1e-3)
        ar = DatasetArchive(buf)
        assert set(ar.names) == {"einspline", "einspline-2"}
        out = ar.extract("einspline")
        assert out.dtype == np.float32
        assert out.size == 48 * 48 * 256

    def test_archive_overhead_is_small(self):
        buf = pack_dataset("QMCPack", 1e-3)
        ar = DatasetArchive(buf)
        streams = sum(ar.entries[n].length for n in ar.names)
        assert buf.size - streams < 128  # TOC bytes only
