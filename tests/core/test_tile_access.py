"""Unit tests for 2-D/3-D Lorenzo tile random access."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.core.errors import RandomAccessError
from repro.core.tile_access import TileAccessor


@pytest.fixture
def field_2d(rng):
    f = np.cumsum(np.cumsum(rng.normal(size=(40, 56)), 0), 1).astype(np.float32)
    buf = compress(f, rel=1e-3, predictor_ndim=2, block=64)
    return f, buf, decompress(buf)


@pytest.fixture
def field_3d(rng):
    f = np.cumsum(rng.normal(size=(12, 16, 20)), axis=0).astype(np.float32)
    buf = compress(f, rel=1e-3, predictor_ndim=3, block=64)
    return f, buf, decompress(buf)


class TestTileDecode2D:
    def test_every_tile_matches_full_decode(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        assert ta.grid == (5, 7)
        for r in range(ta.grid[0]):
            for c in range(ta.grid[1]):
                tile = ta.decode_tile((r, c))
                valid = ta.valid_extent((r, c))
                expect = full[r * 8 : r * 8 + 8, c * 8 : c * 8 + 8]
                assert np.array_equal(tile[valid][: expect.shape[0], : expect.shape[1]], expect)

    def test_voxel_read(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        for voxel in ((0, 0), (39, 55), (17, 23)):
            assert ta.read_voxel(voxel) == full[voxel]

    def test_region_decode(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        region = ta.decode_region((5, 10), (23, 41))
        assert np.array_equal(region, full[5:23, 10:41])

    def test_full_field_region(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        assert np.array_equal(ta.decode_region((0, 0), (40, 56)), full)


class TestTileDecode3D:
    def test_tiles_match_full_decode(self, field_3d, rng):
        f, buf, full = field_3d
        ta = TileAccessor(buf)
        assert ta.grid == (3, 4, 5)
        for _ in range(10):
            coords = tuple(int(rng.integers(0, g)) for g in ta.grid)
            tile = ta.decode_tile(coords)
            sl = tuple(
                slice(c * 4, min((c + 1) * 4, d)) for c, d in zip(coords, ta.dims)
            )
            valid = ta.valid_extent(coords)
            assert np.array_equal(tile[valid], full[sl])

    def test_region_crossing_tiles(self, field_3d):
        f, buf, full = field_3d
        ta = TileAccessor(buf)
        assert np.array_equal(ta.decode_region((1, 2, 3), (9, 14, 17)), full[1:9, 2:14, 3:17])

    def test_voxel_mapping(self, field_3d):
        _, buf, full = field_3d
        ta = TileAccessor(buf)
        coords, offset = ta.tile_for_voxel((5, 6, 7))
        assert coords == (1, 1, 1)
        assert offset == (1, 2, 3)
        assert ta.read_voxel((5, 6, 7)) == full[5, 6, 7]


class TestValidation:
    def test_1d_stream_rejected(self, rng):
        buf = compress(rng.normal(size=100).astype(np.float32), rel=1e-2)
        with pytest.raises(RandomAccessError):
            TileAccessor(buf)

    def test_bad_coords(self, field_2d):
        _, buf, _ = field_2d
        ta = TileAccessor(buf)
        with pytest.raises(RandomAccessError):
            ta.decode_tile((99, 0))
        with pytest.raises(RandomAccessError):
            ta.decode_tile((0,))
        with pytest.raises(RandomAccessError):
            ta.read_voxel((40, 0))
        with pytest.raises(RandomAccessError):
            ta.decode_region((0, 0), (41, 1))

    def test_ntiles(self, field_3d):
        _, buf, _ = field_3d
        ta = TileAccessor(buf)
        assert ta.ntiles == 3 * 4 * 5
