"""Unit tests for 2-D/3-D Lorenzo tile random access."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.core.errors import RandomAccessError
from repro.core.tile_access import TileAccessor


@pytest.fixture
def field_2d(rng):
    f = np.cumsum(np.cumsum(rng.normal(size=(40, 56)), 0), 1).astype(np.float32)
    buf = compress(f, rel=1e-3, predictor_ndim=2, block=64)
    return f, buf, decompress(buf)


@pytest.fixture
def field_3d(rng):
    f = np.cumsum(rng.normal(size=(12, 16, 20)), axis=0).astype(np.float32)
    buf = compress(f, rel=1e-3, predictor_ndim=3, block=64)
    return f, buf, decompress(buf)


class TestTileDecode2D:
    def test_every_tile_matches_full_decode(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        assert ta.grid == (5, 7)
        for r in range(ta.grid[0]):
            for c in range(ta.grid[1]):
                tile = ta.decode_tile((r, c))
                valid = ta.valid_extent((r, c))
                expect = full[r * 8 : r * 8 + 8, c * 8 : c * 8 + 8]
                assert np.array_equal(tile[valid][: expect.shape[0], : expect.shape[1]], expect)

    def test_voxel_read(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        for voxel in ((0, 0), (39, 55), (17, 23)):
            assert ta.read_voxel(voxel) == full[voxel]

    def test_region_decode(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        region = ta.decode_region((5, 10), (23, 41))
        assert np.array_equal(region, full[5:23, 10:41])

    def test_full_field_region(self, field_2d):
        f, buf, full = field_2d
        ta = TileAccessor(buf)
        assert np.array_equal(ta.decode_region((0, 0), (40, 56)), full)


class TestTileDecode3D:
    def test_tiles_match_full_decode(self, field_3d, rng):
        f, buf, full = field_3d
        ta = TileAccessor(buf)
        assert ta.grid == (3, 4, 5)
        for _ in range(10):
            coords = tuple(int(rng.integers(0, g)) for g in ta.grid)
            tile = ta.decode_tile(coords)
            sl = tuple(
                slice(c * 4, min((c + 1) * 4, d)) for c, d in zip(coords, ta.dims)
            )
            valid = ta.valid_extent(coords)
            assert np.array_equal(tile[valid], full[sl])

    def test_region_crossing_tiles(self, field_3d):
        f, buf, full = field_3d
        ta = TileAccessor(buf)
        assert np.array_equal(ta.decode_region((1, 2, 3), (9, 14, 17)), full[1:9, 2:14, 3:17])

    def test_voxel_mapping(self, field_3d):
        _, buf, full = field_3d
        ta = TileAccessor(buf)
        coords, offset = ta.tile_for_voxel((5, 6, 7))
        assert coords == (1, 1, 1)
        assert offset == (1, 2, 3)
        assert ta.read_voxel((5, 6, 7)) == full[5, 6, 7]


class TestValidation:
    def test_1d_stream_rejected(self, rng):
        buf = compress(rng.normal(size=100).astype(np.float32), rel=1e-2)
        with pytest.raises(RandomAccessError):
            TileAccessor(buf)

    def test_bad_coords(self, field_2d):
        _, buf, _ = field_2d
        ta = TileAccessor(buf)
        with pytest.raises(RandomAccessError):
            ta.decode_tile((99, 0))
        with pytest.raises(RandomAccessError):
            ta.decode_tile((0,))
        with pytest.raises(RandomAccessError):
            ta.read_voxel((40, 0))
        with pytest.raises(RandomAccessError):
            ta.decode_region((0, 0), (41, 1))

    def test_ntiles(self, field_3d):
        _, buf, _ = field_3d
        ta = TileAccessor(buf)
        assert ta.ntiles == 3 * 4 * 5


@pytest.fixture
def ragged_2d(rng):
    # 37 x 53 with 8x8 tiles: both edges are ragged (37 = 4*8+5, 53 = 6*8+5)
    f = np.cumsum(np.cumsum(rng.normal(size=(37, 53)), 0), 1).astype(np.float32)
    buf = compress(f, rel=1e-3, predictor_ndim=2, block=64)
    return f, buf, decompress(buf)


@pytest.fixture
def ragged_3d(rng):
    # 9 x 11 x 13 with 4x4x4 tiles: every axis is ragged
    f = np.cumsum(rng.normal(size=(9, 11, 13)), axis=0).astype(np.float32)
    buf = compress(f, rel=1e-3, predictor_ndim=3, block=64)
    return f, buf, decompress(buf)


class TestDecodeRegionEdgeExtents:
    def test_region_exactly_on_tile_boundaries(self, field_2d):
        _, buf, full = field_2d
        ta = TileAccessor(buf)
        assert np.array_equal(ta.decode_region((8, 16), (24, 48)), full[8:24, 16:48])
        # one whole tile
        assert np.array_equal(ta.decode_region((8, 8), (16, 16)), full[8:16, 8:16])

    def test_single_voxel_regions(self, field_2d, ragged_2d):
        for _, buf, full in (field_2d, ragged_2d):
            ta = TileAccessor(buf)
            corners = [
                (0, 0),
                (ta.dims[0] - 1, ta.dims[1] - 1),
                (ta.dims[0] - 1, 0),
                (0, ta.dims[1] - 1),
                (ta.dims[0] // 2, ta.dims[1] // 2),
            ]
            for v in corners:
                region = ta.decode_region(v, (v[0] + 1, v[1] + 1))
                assert region.shape == (1, 1)
                assert region[0, 0] == full[v]

    def test_region_clipped_by_ragged_edge_2d(self, ragged_2d):
        _, buf, full = ragged_2d
        ta = TileAccessor(buf)
        assert ta.grid == (5, 7)
        # the last row/column of tiles are padded; a region reaching the
        # field edge must clip at valid_extent, not read padding
        assert np.array_equal(ta.decode_region((32, 48), (37, 53)), full[32:37, 48:53])
        assert np.array_equal(ta.decode_region((0, 0), (37, 53)), full)
        # strip along just the ragged bottom edge
        assert np.array_equal(ta.decode_region((36, 0), (37, 53)), full[36:37, :])

    def test_region_clipped_by_ragged_edge_3d(self, ragged_3d):
        _, buf, full = ragged_3d
        ta = TileAccessor(buf)
        assert ta.grid == (3, 3, 4)
        assert np.array_equal(ta.decode_region((8, 8, 12), (9, 11, 13)), full[8:9, 8:11, 12:13])
        assert np.array_equal(ta.decode_region((0, 0, 0), (9, 11, 13)), full)

    def test_edge_tile_valid_extent_matches_dims(self, ragged_2d):
        _, buf, full = ragged_2d
        ta = TileAccessor(buf)
        valid = ta.valid_extent((4, 6))  # bottom-right ragged corner tile
        assert valid == (slice(0, 5), slice(0, 5))
        tile = ta.decode_tile((4, 6))
        assert np.array_equal(tile[valid], full[32:37, 48:53])

    def test_empty_region(self, field_2d):
        _, buf, full = field_2d
        ta = TileAccessor(buf)
        region = ta.decode_region((10, 20), (10, 20))
        assert region.shape == (0, 0)
        # half-empty: zero width on one axis only
        assert ta.decode_region((0, 5), (8, 5)).shape == (8, 0)
