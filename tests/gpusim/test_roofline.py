"""Unit tests for the roofline analysis."""

import pytest

from repro.gpusim import A100_40GB, KernelCost, Pattern
from repro.gpusim.roofline import place, render, ridge_intensity


def make(name, nbytes, ops):
    k = KernelCost(name)
    k.read(nbytes, Pattern.VECTORIZED)
    k.compute(ops)
    return k


class TestPlacement:
    def test_ridge_value(self):
        # A100: 9700 Gop/s over 1555 GB/s ~= 6.2 ops per byte.
        assert ridge_intensity(A100_40GB) == pytest.approx(9700 / 1555)

    def test_low_intensity_is_memory_bound(self):
        p = place(make("copy", 1e9, 1e8), A100_40GB)  # 0.1 ops/B
        assert p.bound == "memory"
        assert p.roof_gops == pytest.approx(A100_40GB.dram_bw * 0.1)

    def test_high_intensity_is_compute_bound(self):
        p = place(make("gemm", 1e9, 1e12), A100_40GB)  # 1000 ops/B
        assert p.bound == "compute"
        assert p.roof_gops == pytest.approx(A100_40GB.op_rate)

    def test_efficiency_bounded(self):
        for ops in (1e8, 1e10, 1e12):
            p = place(make("k", 1e9, ops), A100_40GB)
            assert 0 < p.efficiency <= 1.0 + 1e-6

    def test_pure_compute_kernel(self):
        k = KernelCost("alu").compute(1e12)
        p = place(k, A100_40GB)
        assert p.intensity == float("inf")
        assert p.bound == "compute"

    def test_cuszp2_compression_sits_near_the_ridge(self):
        # The Section IV-B story quantified: after vectorization the
        # compression kernel's intensity lands just past the ridge
        # (compute-bound), which caps e2e throughput below copy speed.
        from repro.gpusim import Artifacts
        from repro.gpusim import pipelines as P

        art = Artifacts(268_435_456, 4, 134_217_728, 125_829_120, 8_388_608, 0.0, "plain")
        pipe = P.cuszp2_compression(art, A100_40GB)
        p = place(pipe.kernels[0], A100_40GB)
        ridge = ridge_intensity(A100_40GB)
        assert p.bound == "compute"
        assert ridge < p.intensity < 4 * ridge  # near, not far past


class TestRender:
    def test_render_contains_kernels_and_ridge(self):
        pts = [place(make("a", 1e9, 1e8), A100_40GB), place(make("b", 1e9, 1e12), A100_40GB)]
        text = render(pts, A100_40GB)
        assert "ridge" in text
        assert "a" in text and "b" in text
        assert "memory" in text and "compute" in text

    def test_sorted_by_intensity(self):
        pts = [place(make("high", 1e9, 1e12), A100_40GB), place(make("low", 1e9, 1e8), A100_40GB)]
        text = render(pts, A100_40GB)
        assert text.index("low") < text.index("high")
