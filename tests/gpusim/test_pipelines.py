"""Tests of the calibrated pipeline builders against the paper's shape.

These assert the *relationships* the paper reports (who wins, by roughly
what factor) at paper scale -- 1 GB-class fields -- using synthetic
artifacts, so they run in milliseconds without allocating gigabytes.
"""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.gpusim import A100_40GB, RTX_3080, RTX_3090, Artifacts, profile
from repro.gpusim import pipelines as P

NELEMS = 268_435_456  # 1 GiB of float32


def art(cr, z=0.0, mode="plain", esz=4, ne=NELEMS):
    ib = ne * esz
    payload = int(ib / cr)
    offs = ne // 32
    return Artifacts(ne, esz, payload + offs + 52, payload, offs, z, mode)


@pytest.fixture(scope="module")
def plain():
    return art(8.0)


class TestArtifacts:
    def test_from_real_stream(self):
        from repro import compress

        data = np.cumsum(seeded_rng(0).normal(size=50_000)).astype(np.float32)
        buf = compress(data, rel=1e-3, mode="outlier")
        a = Artifacts.from_cuszp2_stream(data, buf)
        assert a.nelems == 50_000
        assert a.elem_size == 4
        assert a.compressed_bytes == buf.size
        from repro.core import stream

        _, section, _, _ = stream.split_ex(buf)
        assert a.payload_bytes + a.offsets_bytes + 52 + section.size == buf.size
        assert a.mode == "outlier"
        assert 0.0 <= a.zero_block_fraction < 1.0
        assert a.ratio == pytest.approx(200_000 / buf.size)

    def test_zero_fraction_detected(self):
        from repro import compress

        data = np.zeros(10_000, dtype=np.float32)
        data[:32] = 1.0
        a = Artifacts.from_cuszp2_stream(data, compress(data, rel=1e-3))
        assert a.zero_block_fraction > 0.9


class TestCuSZp2Throughput:
    def test_compression_near_paper_average(self, plain):
        # Fig. 14: CUSZP2-P averages ~335 GB/s compression on the A100.
        t = P.cuszp2_compression(plain, A100_40GB).end_to_end_throughput(
            A100_40GB, plain.input_bytes
        )
        assert 280 < t < 420

    def test_decompression_faster_than_compression(self, plain):
        # Section V-B: decompression skips the sizing loop.
        c = P.cuszp2_compression(plain, A100_40GB).end_to_end_throughput(
            A100_40GB, plain.input_bytes
        )
        d = P.cuszp2_decompression(plain, A100_40GB).end_to_end_throughput(
            A100_40GB, plain.input_bytes
        )
        assert d > c
        assert 430 < d < 700

    def test_higher_ratio_raises_throughput(self):
        # Fig. 15's mechanism: fewer compressed bytes -> less work + traffic.
        slow = art(4.0, mode="outlier")
        fast = art(16.0, mode="outlier")
        f = lambda a: P.cuszp2_compression(a, A100_40GB).end_to_end_throughput(
            A100_40GB, a.input_bytes
        )
        assert f(fast) > f(slow)

    def test_sparse_decompression_exceeds_1tb(self):
        # Fig. 14 JetIn: zero blocks flush at memset speed -> ~1 TB/s.
        jet = art(126.0, z=0.98, mode="outlier")
        d = P.cuszp2_decompression(jet, A100_40GB).end_to_end_throughput(
            A100_40GB, jet.input_bytes
        )
        assert d > 900

    def test_double_precision_roughly_2x(self):
        # Fig. 19: f64 compression ~613-628 GB/s = ~2x single precision.
        f32 = art(8.0)
        f64 = art(13.7, esz=8, ne=NELEMS // 2)
        t32 = P.cuszp2_compression(f32, A100_40GB).end_to_end_throughput(
            A100_40GB, f32.input_bytes
        )
        t64 = P.cuszp2_compression(f64, A100_40GB).end_to_end_throughput(
            A100_40GB, f64.input_bytes
        )
        assert 1.5 < t64 / t32 < 2.4

    def test_chained_sync_ablation_hurts(self, plain):
        fast = P.cuszp2_compression(plain, A100_40GB, sync="lookback")
        slow = P.cuszp2_compression(plain, A100_40GB, sync="chained")
        r = slow.end_to_end_time(A100_40GB) / fast.end_to_end_time(A100_40GB)
        assert r > 1.5

    def test_unknown_sync_rejected(self, plain):
        with pytest.raises(ValueError):
            P.cuszp2_compression(plain, A100_40GB, sync="magic")


class TestBaselineOrdering:
    def test_cuszp2_beats_all_pure_gpu_baselines(self, plain):
        n = plain.input_bytes
        ours = P.cuszp2_compression(plain, A100_40GB).end_to_end_throughput(A100_40GB, n)
        cuszp = P.cuszp_compression(plain, A100_40GB).end_to_end_throughput(A100_40GB, n)
        fz = P.fzgpu_compression(plain, A100_40GB).end_to_end_throughput(A100_40GB, n)
        zfp = P.cuzfp_compression(plain, A100_40GB).end_to_end_throughput(A100_40GB, n)
        # Observation I: ~2.03x cuSZp, ~2.11x FZ-GPU, ~2.85x cuZFP.
        assert 1.5 < ours / cuszp < 3.0
        assert 1.5 < ours / fz < 3.0
        assert 2.0 < ours / zfp < 4.0

    def test_hybrid_e2e_collapses(self, plain):
        # Fig. 2: kernel up to ~177 GB/s, e2e 0.32..1.79 GB/s.
        n = plain.input_bytes
        for fam in ("cusz", "cuszx", "mgard"):
            pipe = P.hybrid_compression(plain, A100_40GB, fam)
            kt = pipe.kernel_throughput(A100_40GB, n)
            et = pipe.end_to_end_throughput(A100_40GB, n)
            assert et < 2.5, fam
            assert kt / et > 20, fam

    def test_hybrid_unknown_family(self, plain):
        with pytest.raises(ValueError):
            P.hybrid_compression(plain, A100_40GB, "zstd")

    def test_200x_of_hybrids(self, plain):
        n = plain.input_bytes
        ours = P.cuszp2_compression(plain, A100_40GB).end_to_end_throughput(A100_40GB, n)
        hybrid = P.hybrid_compression(plain, A100_40GB, "cusz").end_to_end_throughput(
            A100_40GB, n
        )
        assert ours / hybrid > 100  # "approximately 200x"


class TestMemoryThroughput:
    def test_fig16_ordering(self, plain):
        # CUSZP2 ~1175 >> cuSZp ~410 > cuZFP ~300 > FZ-GPU ~134 GB/s.
        ours = profile(P.cuszp2_compression(plain, A100_40GB), A100_40GB, "cuszp2")
        cuszp = profile(P.cuszp_compression(plain, A100_40GB), A100_40GB, "cuszp")
        fz = profile(P.fzgpu_compression(plain, A100_40GB), A100_40GB, "fzgpu")
        zfp = profile(P.cuzfp_compression(plain, A100_40GB), A100_40GB, "cuzfp")
        assert (
            ours.memory_throughput_gbs
            > cuszp.memory_throughput_gbs
            > zfp.memory_throughput_gbs
            > fz.memory_throughput_gbs
        )
        assert ours.bandwidth_utilization > 0.6
        assert fz.bandwidth_utilization < 0.15

    def test_report_renders(self, plain):
        text = profile(P.cuszp2_compression(plain, A100_40GB), A100_40GB, "cuszp2").render()
        assert "memory throughput" in text
        assert "A100" in text

    def test_never_reports_above_peak(self):
        jet = art(126.0, z=0.98, mode="outlier")
        prof = profile(P.cuszp2_decompression(jet, A100_40GB), A100_40GB, "cuszp2")
        assert prof.memory_throughput_gbs <= A100_40GB.dram_bw


class TestOtherGPUs:
    def test_fig21_scaling(self):
        # Fig. 21: RTM P3000, averaged bounds: A100 > 3090 > 3080, with the
        # 3090/3080 in the ~180-410 GB/s range.
        a = art(6.0)
        results = {}
        for dev in (A100_40GB, RTX_3090, RTX_3080):
            c = P.cuszp2_compression(a, dev).end_to_end_throughput(dev, a.input_bytes)
            d = P.cuszp2_decompression(a, dev).end_to_end_throughput(dev, a.input_bytes)
            results[dev.name] = (c, d)
        assert results["A100-40GB"][0] > results["RTX-3090"][0] > results["RTX-3080"][0]
        assert 150 < results["RTX-3080"][0] < 260
        assert 180 < results["RTX-3090"][1] < 500

    def test_advantage_is_generic_across_devices(self):
        # Section VI-C: ~2x over baselines on every device.
        a = art(6.0)
        for dev in (RTX_3090, RTX_3080):
            ours = P.cuszp2_compression(a, dev).end_to_end_throughput(dev, a.input_bytes)
            theirs = P.cuszp_compression(a, dev).end_to_end_throughput(dev, a.input_bytes)
            assert ours / theirs > 1.5


class TestRandomAccess:
    def test_tb_level_throughput(self):
        a = art(29.0, z=0.1)
        t = P.cuszp2_random_access(a, A100_40GB).end_to_end_throughput(
            A100_40GB, a.input_bytes
        )
        assert t > 1000  # "TB-level throughput" (Fig. 20 claim)

    def test_sparser_streams_access_faster(self):
        dense = art(6.0, z=0.0)
        sparse = art(120.0, z=0.95)
        f = lambda a: P.cuszp2_random_access(a, A100_40GB).end_to_end_throughput(
            A100_40GB, a.input_bytes
        )
        assert f(sparse) > f(dense)


class TestSyncTimelines:
    def test_fig17_standalone_ratio(self):
        # 846.85 GB/s lookback vs ~351 chained: ratio 2.41x.
        n = NELEMS
        look = P.standalone_scan_timeline(n, 4, A100_40GB, "lookback")
        chain = P.standalone_scan_timeline(n, 4, A100_40GB, "chained")
        lt = look.throughput_gbs(n * 4)
        ct = chain.throughput_gbs(n * 4)
        assert 700 < lt < 1000
        assert 280 < ct < 430
        assert 2.0 < lt / ct < 3.0

    def test_inkernel_sync_latency_small_for_lookback(self):
        n_tb = NELEMS // 4096
        look = P.inkernel_sync_s(n_tb, A100_40GB, "lookback")
        chain = P.inkernel_sync_s(n_tb, A100_40GB, "chained")
        assert look < 5e-4  # sub-millisecond
        assert chain > 2e-3  # the serial chain is milliseconds
        assert chain / look > 10
