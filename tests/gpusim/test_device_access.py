"""Unit tests for device specs and the memory access cost model."""

import pytest

from repro.gpusim import (
    A100_40GB,
    RTX_3080,
    RTX_3090,
    Access,
    Pattern,
    effective_bandwidth,
    get_device,
)
from repro.gpusim.access import PATTERN_COSTS


class TestDeviceSpecs:
    def test_a100_matches_paper_constants(self):
        # Section V-A: 108 SMs, 40 GB; Section IV-B: 1555 GB/s bandwidth.
        assert A100_40GB.num_sms == 108
        assert A100_40GB.dram_bw == 1555.0

    def test_pcie_is_order_10_20_gbs(self):
        # Section I: PCIe "has only a limited throughput of around 10~20 GB/s".
        assert 10.0 <= A100_40GB.pcie_bw <= 20.0

    def test_device_ordering(self):
        assert A100_40GB.dram_bw > RTX_3090.dram_bw > RTX_3080.dram_bw
        assert A100_40GB.op_rate > RTX_3090.op_rate > RTX_3080.op_rate

    def test_lookup(self):
        assert get_device("A100-40GB") is A100_40GB
        with pytest.raises(KeyError):
            get_device("H100")

    def test_scaled_override(self):
        slow = A100_40GB.scaled(dram_bw=100.0)
        assert slow.dram_bw == 100.0
        assert slow.num_sms == A100_40GB.num_sms
        assert A100_40GB.dram_bw == 1555.0  # original untouched


class TestPatternCosts:
    def test_vectorized_is_best(self):
        bws = {p: effective_bandwidth(p, A100_40GB) for p in Pattern}
        assert bws[Pattern.VECTORIZED] == max(
            bws[p] for p in Pattern if p is not Pattern.MEMSET
        )
        assert bws[Pattern.ATOMIC] == min(bws.values())

    def test_section_4b_ordering(self):
        # vectorized > coalesced scalar > strided > atomic.
        order = [Pattern.VECTORIZED, Pattern.COALESCED, Pattern.STRIDED, Pattern.ATOMIC]
        bws = [effective_bandwidth(p, A100_40GB) for p in order]
        assert bws == sorted(bws, reverse=True)

    def test_amplification_at_least_one(self):
        for cost in PATTERN_COSTS.values():
            assert cost.amplification >= 1.0
            assert 0 < cost.utilization <= 1.0

    def test_access_time_scales_linearly(self):
        a = Access(1e9, Pattern.VECTORIZED)
        b = Access(2e9, Pattern.VECTORIZED)
        assert b.time_on(A100_40GB) == pytest.approx(2 * a.time_on(A100_40GB))

    def test_dram_bytes_includes_amplification(self):
        a = Access(1000, Pattern.STRIDED)
        assert a.dram_bytes == 1000 * PATTERN_COSTS[Pattern.STRIDED].amplification

    def test_vectorized_approaches_peak(self):
        # The Section IV-B claim: vectorized+coalesced gets close to the
        # hardware limit (1330 of 1555 measured).
        assert effective_bandwidth(Pattern.VECTORIZED, A100_40GB) > 0.8 * A100_40GB.dram_bw
