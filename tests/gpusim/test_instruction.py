"""Unit tests for SASS instruction accounting (Fig. 10)."""

import pytest

from repro.gpusim import compile_copy_loop, vectorization_reduction


class TestCompileCopyLoop:
    def test_scalar_loop_matches_fig10_left(self):
        # for (i < ele_num) { tmp = ori[i]; dst[i] = tmp; } -> LD.E/ST.E x N
        mix = compile_copy_loop(1024, elem_bits=32, vector_width=1)
        assert mix["LD.E"] == 1024
        assert mix["ST.E"] == 1024
        assert mix.memory_instructions == 2048

    def test_vectorized_loop_matches_fig10_right(self):
        # float4 version -> LD.E.128/ST.E.128 x N/4
        mix = compile_copy_loop(1024, elem_bits=32, vector_width=4)
        assert mix["LD.E.128"] == 256
        assert mix["ST.E.128"] == 256
        assert mix["LD.E"] == 0
        assert mix.memory_instructions == 512

    def test_four_times_reduction(self):
        assert vectorization_reduction(4096) == pytest.approx(4.0)

    def test_control_flow_also_shrinks(self):
        scalar = compile_copy_loop(1024, vector_width=1)
        vector = compile_copy_loop(1024, vector_width=4)
        assert scalar.control_instructions == 4 * vector.control_instructions

    def test_double2_uses_128bit_ops(self):
        mix = compile_copy_loop(512, elem_bits=64, vector_width=2)
        assert mix["LD.E.128"] == 256

    def test_width_validation(self):
        with pytest.raises(ValueError):
            compile_copy_loop(100, vector_width=3)
        with pytest.raises(ValueError):
            compile_copy_loop(101, vector_width=4)
        with pytest.raises(ValueError):
            compile_copy_loop(100, elem_bits=64, vector_width=4)  # 256-bit

    def test_multiple_streams_per_iteration(self):
        mix = compile_copy_loop(128, vector_width=4, loads_per_iter=2, stores_per_iter=1)
        assert mix["LD.E.128"] == 64
        assert mix["ST.E.128"] == 32
