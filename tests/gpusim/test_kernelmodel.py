"""Unit tests for the kernel/pipeline cost model."""

import pytest

from repro.gpusim import (
    A100_40GB,
    KernelCost,
    Pattern,
    PipelineCost,
    ablate_vectorization,
    merge,
    replace_sync,
)


def make_kernel(n=1e9):
    k = KernelCost("k")
    k.read(n, Pattern.VECTORIZED, "in")
    k.write(n / 8, Pattern.BLOCK_SCATTER, "out")
    k.compute(50 * n / 4)
    return k


class TestKernelCost:
    def test_memory_time_sums_streams(self):
        k = make_kernel()
        assert k.memory_time(A100_40GB) == pytest.approx(
            sum(a.time_on(A100_40GB) for a in k.accesses)
        )

    def test_body_is_max_of_memory_and_compute(self):
        k = KernelCost("x").read(1e9, Pattern.VECTORIZED)
        k.compute(1e15)  # clearly compute bound
        t = k.timing(A100_40GB)
        assert t.bound == "compute"
        assert t.total_s == pytest.approx(A100_40GB.kernel_launch_s + t.compute_s)

    def test_memory_bound_kernel(self):
        k = KernelCost("x").read(10e9, Pattern.STRIDED)
        k.compute(1.0)
        assert k.timing(A100_40GB).bound == "memory"

    def test_sync_adds_latency(self):
        base = make_kernel()
        with_sync = make_kernel().sync(1e-3)
        assert with_sync.time(A100_40GB) == pytest.approx(base.time(A100_40GB) + 1e-3)

    def test_launch_overhead_included(self):
        k = KernelCost("empty")
        assert k.time(A100_40GB) == A100_40GB.kernel_launch_s

    def test_timing_breakdown_consistent(self):
        t = make_kernel().timing(A100_40GB)
        assert t.total_s == pytest.approx(t.launch_s + max(t.memory_s, t.compute_s) + t.sync_s)
        assert t.memory_throughput_gbs == pytest.approx(t.dram_bytes / t.total_s / 1e9)


class TestPipelineCost:
    def test_end_to_end_adds_host_and_pcie(self):
        pipe = PipelineCost("p", [make_kernel()])
        gpu_only = pipe.end_to_end_time(A100_40GB)
        pipe.pcie_bytes = 12e9  # exactly 1 second at 12 GB/s
        pipe.host_bytes = 1.2e9  # exactly 1 second at 1.2 GB/s
        pipe.host_fixed_s = 0.5
        assert pipe.end_to_end_time(A100_40GB) == pytest.approx(gpu_only + 2.5)

    def test_kernel_vs_e2e_gap(self):
        # The Fig. 2 phenomenon in miniature: PCIe + host stages crush e2e
        # throughput while kernel throughput stays high.
        pipe = PipelineCost("hybrid", [make_kernel(1e9)])
        pipe.pcie_bytes = 1e9
        pipe.host_bytes = 1e9
        kt = pipe.kernel_throughput(A100_40GB, 1e9)
        et = pipe.end_to_end_throughput(A100_40GB, 1e9)
        assert kt / et > 50

    def test_multiple_kernels_sum(self):
        k = make_kernel()
        one = PipelineCost("one", [k]).kernel_time(A100_40GB)
        two = PipelineCost("two", [k, k]).kernel_time(A100_40GB)
        assert two == pytest.approx(2 * one)


class TestAblations:
    def test_merge_fuses_stages(self):
        a = KernelCost("a").read(1e9, Pattern.VECTORIZED).compute(5e9)
        b = KernelCost("b").write(1e8, Pattern.COALESCED).compute(1e9)
        fused = merge("fused", a, b)
        assert fused.useful_bytes() == pytest.approx(1.1e9)
        assert fused.compute_ops == pytest.approx(6e9)
        # Fusing saves one launch relative to running a and b separately.
        separate = a.time(A100_40GB) + b.time(A100_40GB)
        assert fused.time(A100_40GB) < separate

    def test_ablate_vectorization_slows_memory_and_issue(self):
        from repro.gpusim.calibration import VECTORIZATION_ISSUE_FACTOR

        k = make_kernel()
        slow = ablate_vectorization(k)
        assert slow.memory_time(A100_40GB) > k.memory_time(A100_40GB)
        # Scalar code also pays 4x the LD/ST + control instructions (Fig. 10).
        assert slow.compute_ops == k.compute_ops * VECTORIZATION_ISSUE_FACTOR
        # Non-vectorized patterns are untouched.
        assert slow.accesses[1].pattern is Pattern.BLOCK_SCATTER

    def test_replace_sync(self):
        k = make_kernel().sync(1e-5)
        swapped = replace_sync(k, 3e-3, "+chained")
        assert swapped.sync_s == 3e-3
        assert swapped.useful_bytes() == k.useful_bytes()
        assert swapped.time(A100_40GB) > k.time(A100_40GB)
