"""Integration tests: the single-kernel pipeline on the virtual GPU.

These validate the paper's central structural claim -- the whole
compression pipeline, including the decoupled-lookback synchronization and
block concatenation, runs as one concurrent kernel -- by requiring the VM
execution to produce *byte-identical* streams to the vectorized reference
codec under arbitrary schedules.
"""

import numpy as np
import pytest

from repro import compress, decompress
from repro.gpusim.kernels import compress_on_vm, decompress_on_vm


@pytest.fixture
def field(rng):
    return np.cumsum(rng.normal(size=2_000)).astype(np.float32)


class TestSingleKernelCompression:
    @pytest.mark.parametrize("mode", ["plain", "outlier"])
    def test_byte_identical_to_reference(self, field, mode):
        ref = compress(field, rel=1e-3, mode=mode)
        vm = compress_on_vm(field, 1e-3, mode=mode, seed=0)
        assert np.array_equal(vm, ref)

    @pytest.mark.parametrize("seed", range(8))
    def test_any_schedule_same_stream(self, field, seed):
        ref = compress(field, rel=1e-3, mode="outlier")
        vm = compress_on_vm(field, 1e-3, mode="outlier", resident=5, seed=seed)
        assert np.array_equal(vm, ref)

    @pytest.mark.parametrize("resident", [1, 2, 16])
    def test_any_occupancy(self, field, resident):
        ref = compress(field, rel=1e-3, mode="outlier")
        vm = compress_on_vm(field, 1e-3, mode="outlier", resident=resident, seed=3)
        assert np.array_equal(vm, ref)

    @pytest.mark.parametrize("blocks_per_tb", [1, 3, 7])
    def test_any_tb_granularity(self, field, blocks_per_tb):
        ref = compress(field, rel=1e-3, mode="plain")
        vm = compress_on_vm(field, 1e-3, mode="plain", blocks_per_tb=blocks_per_tb, seed=1)
        assert np.array_equal(vm, ref)

    def test_awkward_length(self, rng):
        data = rng.normal(size=333).astype(np.float32)
        assert np.array_equal(
            compress_on_vm(data, 1e-2, seed=2), compress(data, rel=1e-2, mode="outlier")
        )

    def test_sparse_field_zero_blocks(self, sparse_f32):
        data = sparse_f32[:5_000]
        assert np.array_equal(
            compress_on_vm(data, 1e-2, seed=4), compress(data, rel=1e-2, mode="outlier")
        )

    def test_f64(self, rng):
        data = np.cumsum(rng.normal(size=1_000))
        assert np.array_equal(
            compress_on_vm(data, 1e-3, seed=5), compress(data, rel=1e-3, mode="outlier")
        )

    def test_absolute_bound(self, field):
        from repro.core.quantize import ErrorBound

        ref = compress(field, abs=0.25, mode="outlier")
        vm = compress_on_vm(field, ErrorBound.absolute(0.25), seed=6)
        assert np.array_equal(vm, ref)


class TestSingleKernelDecompression:
    def test_matches_reference_decode(self, field):
        buf = compress(field, rel=1e-3, mode="outlier")
        assert np.array_equal(decompress_on_vm(buf, seed=0), decompress(buf))

    @pytest.mark.parametrize("seed", range(5))
    def test_any_schedule(self, field, seed):
        buf = compress(field, rel=1e-3, mode="plain")
        assert np.array_equal(decompress_on_vm(buf, resident=4, seed=seed), decompress(buf))

    def test_full_vm_round_trip(self, field):
        stream = compress_on_vm(field, 1e-3, mode="outlier", seed=7)
        recon = decompress_on_vm(stream, seed=8)
        eb = 1e-3 * (field.max() - field.min())
        assert np.abs(recon - field).max() <= eb * (1 + 1e-6)

    def test_shape_restored(self, rng):
        data = rng.normal(size=(20, 40)).astype(np.float32)
        buf = compress_on_vm(data, 1e-2, seed=9)
        assert decompress_on_vm(buf, seed=10).shape == (20, 40)

    def test_multidim_stream_rejected(self, rng):
        data = np.cumsum(rng.normal(size=(16, 16)), axis=0).astype(np.float32)
        buf = compress(data, rel=1e-3, predictor_ndim=2, block=64)
        with pytest.raises(ValueError):
            decompress_on_vm(buf)
