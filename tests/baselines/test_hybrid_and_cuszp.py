"""Unit tests for the hybrid codecs (cuSZ/cuSZx/MGARD) and the cuSZp
baseline wrapper."""

import numpy as np
import pytest

from repro import compress as c2_compress
from repro.baselines import HYBRIDS, CuSZ, CuSZp, CuSZx, MGARDLike
from repro.core.errors import StreamFormatError
from repro.core.quantize import ErrorBound

from tests.helpers import assert_error_bounded, value_range


@pytest.mark.parametrize("cls", [CuSZ, CuSZx, MGARDLike])
class TestHybridCodecs:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3])
    def test_error_bound(self, smooth_f32, cls, rel):
        codec = cls(ErrorBound.relative(rel))
        recon = codec.decompress(codec.compress(smooth_f32))
        assert recon.shape == smooth_f32.shape
        assert_error_bounded(smooth_f32, recon, rel * value_range(smooth_f32))

    def test_compresses(self, smooth_f32, cls):
        buf = cls(ErrorBound.relative(1e-3)).compress(smooth_f32)
        assert smooth_f32.nbytes / len(buf) > 1.5

    def test_rough_data(self, rough_f32, cls):
        codec = cls(ErrorBound.relative(1e-2))
        recon = codec.decompress(codec.compress(rough_f32))
        assert_error_bounded(rough_f32, recon, 1e-2 * value_range(rough_f32))

    def test_awkward_length(self, rng, cls):
        data = np.cumsum(rng.normal(size=1013)).astype(np.float32)
        codec = cls(ErrorBound.relative(1e-3))
        recon = codec.decompress(codec.compress(data))
        assert recon.shape == (1013,)
        assert_error_bounded(data, recon, 1e-3 * value_range(data))

    def test_f64(self, smooth_f64, cls):
        codec = cls(ErrorBound.relative(1e-3))
        recon = codec.decompress(codec.compress(smooth_f64))
        assert recon.dtype == np.float64
        assert_error_bounded(smooth_f64, recon, 1e-3 * value_range(smooth_f64))

    def test_bad_magic_rejected(self, smooth_f32, cls):
        codec = cls(ErrorBound.relative(1e-3))
        buf = np.array(codec.compress(smooth_f32), dtype=np.uint8).copy()
        buf[0] = ord("X")
        with pytest.raises(StreamFormatError):
            codec.decompress(buf)


class TestCuSZSpecifics:
    def test_huffman_beats_fle_on_very_smooth_data(self, rng):
        # Entropy coding exploits the delta distribution more than FLE can;
        # this is why cuSZ gets good ratios despite being slow end-to-end.
        data = np.cumsum(rng.normal(size=50_000) * 0.1).astype(np.float32)
        csz = CuSZ(ErrorBound.relative(1e-3)).compress(data)
        fle = c2_compress(data, rel=1e-3, mode="plain")
        assert len(csz) < fle.size

    def test_outlier_escape_path(self, rng):
        # Huge jumps force deltas outside the 256-bin table.
        data = np.zeros(4000, dtype=np.float32)
        data[::100] = rng.normal(size=40) * 1e6
        codec = CuSZ(ErrorBound.absolute(0.5))
        recon = codec.decompress(codec.compress(data))
        assert_error_bounded(data, recon, 0.5)


class TestCuSZxSpecifics:
    def test_constant_blocks_stored_as_means(self, sparse_f32):
        codec = CuSZx(ErrorBound.relative(1e-2))
        buf = codec.compress(sparse_f32)
        # The 200 scattered nonzeros touch a minority of the 128-element
        # blocks; the constant majority costs ~4 bytes each.
        assert sparse_f32.nbytes / len(buf) > 8

    def test_exactly_constant_data(self):
        data = np.full(10_000, 2.5, dtype=np.float32)
        codec = CuSZx(ErrorBound.relative(1e-3))
        recon = codec.decompress(codec.compress(data))
        assert np.abs(recon - data).max() <= 1e-3 * 2.5 * 1.001


class TestMGARDSpecifics:
    def test_multilevel_structure(self, rng):
        # Level count grows logarithmically with input size.
        codec = MGARDLike(ErrorBound.relative(1e-3))
        assert codec._levels(4) == 0
        assert codec._levels(8) == 1
        assert codec._levels(1024) == 8

    def test_tiny_input(self, rng):
        data = rng.normal(size=3).astype(np.float32)
        codec = MGARDLike(ErrorBound.relative(1e-2))
        recon = codec.decompress(codec.compress(data))
        assert_error_bounded(data, recon, 1e-2 * max(value_range(data), 1e-30))


class TestCuSZpBaseline:
    def test_stream_identical_to_cuszp2_plain(self, smooth_f32):
        # Table III's footnote ("<0.01% differences") is byte-exact here.
        ours = c2_compress(smooth_f32, rel=1e-3, mode="plain")
        theirs = CuSZp(ErrorBound.relative(1e-3)).compress(smooth_f32)
        assert np.array_equal(ours, theirs)

    def test_round_trip(self, smooth_f32):
        codec = CuSZp(ErrorBound.relative(1e-3))
        recon = codec.decompress(codec.compress(smooth_f32))
        assert_error_bounded(smooth_f32, recon, 1e-3 * value_range(smooth_f32))

    def test_float_shorthand(self, smooth_f32):
        codec = CuSZp(1e-3)
        assert codec.error_bound.kind == "rel"

    def test_registry_complete(self):
        assert set(HYBRIDS) == {"cusz", "cuszx", "mgard"}
