"""Unit tests for the canonical Huffman coder."""

import numpy as np
import pytest

from repro.baselines import huffman
from repro.core.errors import StreamFormatError


def roundtrip(symbols, alphabet):
    freqs = np.bincount(symbols, minlength=alphabet)
    table = huffman.HuffmanTable.from_frequencies(freqs)
    packed, nbits = huffman.encode(symbols, table)
    return huffman.decode(packed, nbits, table, len(symbols)), table, nbits


class TestCodeConstruction:
    def test_kraft_equality(self, rng):
        # A full Huffman tree satisfies sum(2^-l) == 1.
        freqs = rng.integers(1, 1000, size=32)
        lengths = huffman.code_lengths(freqs)
        assert sum(2.0 ** -int(l) for l in lengths if l) == pytest.approx(1.0)

    def test_frequent_symbols_get_short_codes(self):
        freqs = np.array([1000, 10, 10, 10])
        lengths = huffman.code_lengths(freqs)
        assert lengths[0] == min(l for l in lengths if l)

    def test_absent_symbols_get_no_code(self):
        lengths = huffman.code_lengths(np.array([5, 0, 5]))
        assert lengths[1] == 0

    def test_single_symbol_alphabet(self):
        lengths = huffman.code_lengths(np.array([0, 7, 0]))
        assert lengths[1] == 1

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            huffman.code_lengths(np.zeros(4, dtype=np.int64))

    def test_canonical_codes_are_prefix_free(self, rng):
        freqs = rng.integers(0, 100, size=64)
        freqs[0] = 1  # ensure nonempty
        lengths = huffman.code_lengths(freqs)
        codes = huffman.canonical_codes(lengths)
        entries = [(int(codes[s]), int(l)) for s, l in enumerate(lengths) if l]
        strings = [format(c, f"0{l}b") for c, l in entries]
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                if i != j:
                    assert not b.startswith(a)


class TestEncodeDecode:
    def test_round_trip_skewed(self, rng):
        syms = rng.choice(8, size=5000, p=[0.5, 0.2, 0.1, 0.08, 0.05, 0.04, 0.02, 0.01])
        back, _, _ = roundtrip(syms, 8)
        assert np.array_equal(back, syms)

    def test_round_trip_uniform(self, rng):
        syms = rng.integers(0, 256, size=3000)
        back, _, _ = roundtrip(syms, 256)
        assert np.array_equal(back, syms)

    def test_compression_near_entropy(self, rng):
        p = np.array([0.6, 0.2, 0.1, 0.1])
        syms = rng.choice(4, size=50_000, p=p)
        _, _, nbits = roundtrip(syms, 4)
        entropy = -(p * np.log2(p)).sum()
        assert nbits / len(syms) < entropy + 0.15

    def test_single_symbol_stream(self):
        syms = np.zeros(500, dtype=np.int64)
        back, _, nbits = roundtrip(syms, 4)
        assert np.array_equal(back, syms)
        assert nbits == 500  # one bit per symbol

    def test_unknown_symbol_rejected_at_encode(self):
        table = huffman.HuffmanTable.from_frequencies(np.array([5, 5, 0]))
        with pytest.raises(ValueError):
            huffman.encode(np.array([2]), table)

    def test_truncated_stream_detected(self, rng):
        syms = rng.integers(0, 16, size=200)
        freqs = np.bincount(syms, minlength=16)
        table = huffman.HuffmanTable.from_frequencies(freqs)
        packed, nbits = huffman.encode(syms, table)
        with pytest.raises(StreamFormatError):
            huffman.decode(packed, nbits // 2, table, len(syms))

    def test_expected_bits_matches_encode(self, rng):
        syms = rng.integers(0, 10, size=1000)
        freqs = np.bincount(syms, minlength=10)
        table = huffman.HuffmanTable.from_frequencies(freqs)
        _, nbits = huffman.encode(syms, table)
        assert nbits == int(table.expected_bits(freqs))
