"""Unit tests for the fixed-rate ZFP (cuZFP) implementation."""

import numpy as np
import pytest

from repro.baselines.zfp import CuZFP, embedded, fixedpoint, negabinary, transform
from repro.core.errors import InvalidInputError


@pytest.fixture
def smooth_3d(rng):
    f = rng.normal(size=(16, 16, 16))
    return (np.cumsum(np.cumsum(np.cumsum(f, 0), 1), 2) / 30).astype(np.float32)


class TestFixedPoint:
    def test_round_trip_near_exact(self, rng):
        blocks = rng.uniform(-100, 100, size=(20, 64)).astype(np.float32)
        emax = fixedpoint.block_exponents(blocks)
        back = fixedpoint.from_fixed(fixedpoint.to_fixed(blocks, emax), emax)
        assert np.abs(back - blocks).max() < 1e-4  # 30-bit fraction

    def test_magnitude_bounded_by_2_30(self, rng):
        blocks = rng.uniform(-1e9, 1e9, size=(20, 64)).astype(np.float32)
        i = fixedpoint.to_fixed(blocks, fixedpoint.block_exponents(blocks))
        assert np.abs(i).max() <= 2**30

    def test_zero_block_sentinel(self):
        blocks = np.zeros((1, 64), dtype=np.float32)
        code = fixedpoint.encode_emax(fixedpoint.block_exponents(blocks))
        assert code[0] == 0
        _, is_zero = fixedpoint.decode_emax(code)
        assert is_zero[0]

    def test_emax_round_trip(self, rng):
        blocks = (rng.uniform(-1, 1, size=(50, 16)) * 10.0 ** rng.integers(-20, 20, size=(50, 1))).astype(np.float32)
        emax = fixedpoint.block_exponents(blocks)
        dec, is_zero = fixedpoint.decode_emax(fixedpoint.encode_emax(emax))
        assert np.array_equal(dec[~is_zero], emax[~is_zero])


class TestTransform:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_inverse_nearly_undoes_forward(self, rng, ndim):
        # ZFP's lifting is near-invertible: the shifts discard only the
        # lowest bits, so |roundtrip - original| is tiny vs 2**30 inputs.
        ib = rng.integers(-(2**29), 2**29, size=(50, 4**ndim)).astype(np.int64)
        back = transform.inverse(transform.forward(ib, ndim), ndim)
        assert np.abs(back - ib).max() <= 64

    def test_constant_block_concentrates_energy(self):
        # A constant block transforms to a single DC coefficient.
        ib = np.full((1, 64), 1 << 20, dtype=np.int64)
        co = transform.forward(ib, 3)
        assert co[0, 0] != 0
        assert np.abs(co[0, 1:]).max() <= 1  # numerical dust only

    def test_smooth_block_decays_in_sequency_order(self, rng):
        ramp = np.arange(64, dtype=np.int64).reshape(4, 4, 4) * (1 << 18)
        co = transform.forward(ramp.reshape(1, 64), 3)[0]
        head = np.abs(co[:8]).max()
        tail = np.abs(co[32:]).max()
        assert head > 10 * max(tail, 1)

    def test_order_is_permutation(self):
        for ndim in (1, 2, 3):
            order = transform.coef_order(ndim)
            assert sorted(order) == list(range(4**ndim))

    def test_order_starts_with_dc(self):
        assert transform.coef_order(3)[0] == 0


class TestNegabinary:
    def test_round_trip(self, rng):
        x = rng.integers(-(2**30), 2**30, size=5000)
        assert np.array_equal(
            negabinary.negabinary_to_int(negabinary.int_to_negabinary(x)), x
        )

    def test_small_magnitudes_have_small_codes(self):
        codes = negabinary.int_to_negabinary(np.array([0, 1, -1, 2, -2]))
        assert codes.max() < 8


class TestEmbedded:
    def test_full_budget_exact(self, rng):
        coeffs = [int(c) for c in rng.integers(0, 2**31, size=64, dtype=np.int64)]
        budget = 64 * 40
        s = embedded.encode_block(coeffs, budget, 32)
        assert embedded.decode_block(s, budget, 64, 32) == coeffs

    def test_truncation_keeps_high_planes(self, rng):
        coeffs = [int(c) for c in rng.integers(0, 2**20, size=16, dtype=np.int64)]
        full = embedded.encode_block(coeffs, 16 * 40, 32)
        exact = embedded.decode_block(full, 16 * 40, 16, 32)
        tight = embedded.encode_block(coeffs, 160, 32)
        approx = embedded.decode_block(tight, 160, 16, 32)
        err_full = max(abs(a - b) for a, b in zip(exact, coeffs))
        err_tight = max(abs(a - b) for a, b in zip(approx, coeffs))
        assert err_full == 0
        # Truncated reconstruction is approximate but bounded: only planes
        # below the cut can differ.
        assert err_tight < 2**20

    def test_fixed_rate_is_exact_length(self, rng):
        coeffs = [int(c) for c in rng.integers(0, 2**31, size=64, dtype=np.int64)]
        s = embedded.encode_block(coeffs, 333, 32)
        assert s.length == 333

    def test_zero_block_encodes_cheaply(self):
        s = embedded.encode_block([0] * 64, 512, 32)
        # All planes emit a single 'no one-bits' test bit; everything else
        # is fixed-rate padding.
        assert s.bits == 0

    def test_bitstream_round_trip(self):
        s = embedded.BitStream()
        s.write_bits(0b1011, 4)
        s.write_bit(1)
        raw = s.to_bytes(5)
        t = embedded.BitStream.from_bytes(raw, 5)
        assert t.read_bits(4) == 0b1011
        assert t.read_bit() == 1
        assert t.read_bit() == 0  # past the end of a truncated stream


class TestCuZFPCodec:
    @pytest.mark.parametrize("rate", [4, 8, 16])
    def test_rate_controls_size(self, smooth_3d, rate):
        buf = CuZFP(rate).compress(smooth_3d)
        cr = smooth_3d.size * 4 / buf.size
        assert 0.8 * 32 / rate < cr < 1.3 * 32 / rate

    def test_quality_improves_with_rate(self, smooth_3d):
        errs = []
        for rate in (4, 8, 16):
            z = CuZFP(rate)
            recon = z.decompress(z.compress(smooth_3d))
            errs.append(float(np.abs(recon - smooth_3d).max()))
        assert errs[0] > errs[1] > errs[2]

    def test_high_rate_near_lossless(self, smooth_3d):
        z = CuZFP(24)
        recon = z.decompress(z.compress(smooth_3d))
        rng_ = smooth_3d.max() - smooth_3d.min()
        assert np.abs(recon - smooth_3d).max() < 1e-4 * rng_

    @pytest.mark.parametrize("shape", [(64,), (24, 24), (9, 10, 11)])
    def test_all_dimensionalities(self, rng, shape):
        field = np.cumsum(rng.normal(size=shape), axis=0).astype(np.float32)
        z = CuZFP(16)
        recon = z.decompress(z.compress(field))
        assert recon.shape == shape
        rng_ = field.max() - field.min()
        assert np.abs(recon - field).max() < 0.05 * rng_

    def test_zero_field(self):
        field = np.zeros((8, 8, 8), dtype=np.float32)
        z = CuZFP(8)
        assert np.array_equal(z.decompress(z.compress(field)), field)

    def test_fixed_rate_independent_of_content(self, rng):
        a = CuZFP(8).compress(np.zeros((16, 16, 16), dtype=np.float32))
        b = CuZFP(8).compress(rng.normal(size=(16, 16, 16)).astype(np.float32))
        assert a.size == b.size  # "fixed-rate mode ... a fixed number"

    def test_rejects_f16(self):
        with pytest.raises(InvalidInputError):
            CuZFP(8).compress(np.zeros((4, 4), dtype=np.float16))

    def test_rejects_nonfinite(self):
        bad = np.full((4, 4), np.nan, dtype=np.float32)
        with pytest.raises(InvalidInputError):
            CuZFP(8).compress(bad)

    def test_rejects_bad_rate(self):
        with pytest.raises(InvalidInputError):
            CuZFP(0)


class TestFloat64Pipeline:
    """The 64-bit intprec path (an extension: real cuZFP lacks f64 in the
    paper's comparison)."""

    @pytest.fixture
    def smooth_f64_3d(self, rng):
        f = rng.normal(size=(12, 12, 12))
        return (np.cumsum(np.cumsum(np.cumsum(f, 0), 1), 2) / 20).astype(np.float64)

    def test_round_trip_quality_scales_with_rate(self, smooth_f64_3d):
        errs = []
        for rate in (8, 16, 32):
            z = CuZFP(rate)
            recon = z.decompress(z.compress(smooth_f64_3d))
            assert recon.dtype == np.float64
            errs.append(float(np.abs(recon - smooth_f64_3d).max()))
        assert errs[0] > errs[1] > errs[2]

    def test_high_rate_is_very_accurate(self, smooth_f64_3d):
        z = CuZFP(32)
        recon = z.decompress(z.compress(smooth_f64_3d))
        rng_ = smooth_f64_3d.max() - smooth_f64_3d.min()
        assert np.abs(recon - smooth_f64_3d).max() < 1e-9 * rng_

    def test_same_rate_doubles_f64_ratio(self, rng, smooth_f64_3d):
        # rate = bits/value, so the ratio doubles against 64-bit elements.
        f32 = smooth_f64_3d.astype(np.float32)
        r64 = CuZFP(8).ratio(smooth_f64_3d)
        r32 = CuZFP(8).ratio(f32)
        assert r64 / r32 == pytest.approx(2.0, rel=0.05)

    def test_negabinary_64bit_round_trip(self, rng):
        from repro.baselines.zfp import negabinary

        x = rng.integers(-(2**62), 2**62, size=1000)
        back = negabinary.negabinary_to_int(negabinary.int_to_negabinary(x, 64), 64)
        assert np.array_equal(back, x)

    def test_zero_f64_field(self):
        z = CuZFP(8)
        field = np.zeros((8, 8), dtype=np.float64)
        assert np.array_equal(z.decompress(z.compress(field)), field)
