"""Unit tests for the FZ-GPU reproduction (bitshuffle + zero-word removal)."""

import numpy as np
import pytest

from repro.baselines import FZGPU, FZGPULaunchError
from repro.baselines import bitshuffle
from repro.core.quantize import ErrorBound

from tests.helpers import assert_error_bounded, value_range


class TestBitshuffle:
    def test_round_trip(self, rng):
        v = rng.integers(0, 2**32, size=1000, dtype=np.int64).astype(np.uint32)
        assert np.array_equal(bitshuffle.unshuffle(bitshuffle.shuffle(v), 1000), v)

    def test_round_trip_unaligned(self, rng):
        v = rng.integers(0, 2**16, size=37, dtype=np.int64).astype(np.uint32)
        assert np.array_equal(bitshuffle.unshuffle(bitshuffle.shuffle(v), 37), v)

    def test_word_layout(self):
        # Value j of a group contributes bit j of each plane word.
        v = np.zeros(32, dtype=np.uint32)
        v[5] = 0b11  # bits 0 and 1 set
        words = bitshuffle.shuffle(v)
        assert words[0] == 1 << 5
        assert words[1] == 1 << 5
        assert np.all(words[2:] == 0)

    def test_small_values_give_zero_words(self, rng):
        # The mechanism FZ-GPU exploits: values < 2^k zero all planes >= k.
        v = rng.integers(0, 16, size=320, dtype=np.int64).astype(np.uint32)
        words = bitshuffle.shuffle(v).reshape(-1, 32)
        assert np.all(words[:, 4:] == 0)

    def test_zigzag_round_trip(self, rng):
        d = rng.integers(-(2**31), 2**31, size=1000)
        assert np.array_equal(bitshuffle.unzigzag(bitshuffle.zigzag(d)), d)

    def test_zigzag_keeps_small_magnitudes_small(self):
        assert bitshuffle.zigzag(np.array([0, -1, 1, -2, 2])).tolist() == [0, 1, 2, 3, 4]


class TestFZGPUCodec:
    @pytest.mark.parametrize("rel", [1e-2, 1e-3, 1e-4])
    def test_error_bound(self, smooth_f32, rel):
        codec = FZGPU(ErrorBound.relative(rel))
        recon = codec.decompress(codec.compress(smooth_f32))
        assert_error_bounded(smooth_f32, recon, rel * value_range(smooth_f32))

    def test_same_reconstruction_as_cuszp2(self, smooth_f32):
        # Section V-D: same lossy step => identical reconstruction.
        from repro import compress as c2_compress
        from repro import decompress as c2_decompress

        fz = FZGPU(ErrorBound.relative(1e-3))
        a = fz.decompress(fz.compress(smooth_f32))
        b = c2_decompress(c2_compress(smooth_f32, rel=1e-3))
        assert np.array_equal(a, b)

    def test_compresses_smooth_data(self, smooth_f32):
        buf = FZGPU(ErrorBound.relative(1e-3)).compress(smooth_f32)
        assert smooth_f32.nbytes / buf.size > 2

    def test_sparse_data(self, sparse_f32):
        codec = FZGPU(ErrorBound.relative(1e-2))
        buf = codec.compress(sparse_f32)
        assert sparse_f32.nbytes / buf.size > 10
        recon = codec.decompress(buf)
        assert_error_bounded(sparse_f32, recon, 1e-2 * value_range(sparse_f32))

    def test_awkward_length(self, rng):
        data = rng.normal(size=101).astype(np.float32)
        codec = FZGPU(ErrorBound.relative(1e-3))
        recon = codec.decompress(codec.compress(data))
        assert recon.shape == (101,)
        assert_error_bounded(data, recon, 1e-3 * value_range(data))

    def test_f64(self, smooth_f64):
        codec = FZGPU(ErrorBound.relative(1e-4))
        recon = codec.decompress(codec.compress(smooth_f64))
        assert recon.dtype == np.float64
        assert_error_bounded(smooth_f64, recon, 1e-4 * value_range(smooth_f64))

    def test_paper_bug_reproduction(self, smooth_f32):
        codec = FZGPU(ErrorBound.relative(1e-3), strict_paper_bugs=True)
        with pytest.raises(FZGPULaunchError):
            codec.compress(smooth_f32, dataset="HACC")
        # Non-affected datasets still work.
        codec.compress(smooth_f32, dataset="CESM-ATM")

    def test_truncated_stream_detected(self, smooth_f32):
        from repro.core.errors import StreamFormatError

        codec = FZGPU(ErrorBound.relative(1e-3))
        buf = codec.compress(smooth_f32)
        with pytest.raises(StreamFormatError):
            codec.decompress(buf[:-10])


class TestLorenzo3DMode:
    """The true 3-D Lorenzo predictor of the real FZ-GPU (opt-in)."""

    @pytest.fixture
    def volume(self, rng):
        f = np.cumsum(np.cumsum(np.cumsum(rng.normal(size=(24, 24, 48)), 0), 1), 2)
        return (f / 40).astype(np.float32)

    def test_round_trip_bounded(self, volume):
        codec = FZGPU(ErrorBound.relative(1e-3), predictor_ndim=3)
        recon = codec.decompress(codec.compress(volume)).reshape(volume.shape)
        assert_error_bounded(volume, recon, 1e-3 * value_range(volume))

    def test_3d_beats_1d_on_smooth_volumes(self, volume):
        one = FZGPU(ErrorBound.relative(1e-3), predictor_ndim=1).compress(volume)
        three = FZGPU(ErrorBound.relative(1e-3), predictor_ndim=3).compress(volume)
        assert three.size < one.size

    def test_needs_3d_shape(self, rng):
        from repro.baselines import FZGPULaunchError

        codec = FZGPU(ErrorBound.relative(1e-3), predictor_ndim=3)
        with pytest.raises(FZGPULaunchError):
            codec.compress(rng.normal(size=100).astype(np.float32))

    def test_awkward_3d_shape(self, rng):
        vol = np.cumsum(rng.normal(size=(7, 11, 13)), axis=0).astype(np.float32)
        codec = FZGPU(ErrorBound.relative(1e-2), predictor_ndim=3)
        recon = codec.decompress(codec.compress(vol)).reshape(vol.shape)
        assert_error_bounded(vol, recon, 1e-2 * value_range(vol))
