"""Span/Tracer semantics: nesting, thread safety, cross-process adoption."""

import threading
import time

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    DISABLED,
    Span,
    TraceContext,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    maybe_span,
    set_thread_tracer,
    tracing,
)
from repro.serve.pool import WorkerPool, register_task


@register_task("test.traced_work")
def _traced_work(arg):
    """A task that opens its own spans (visible only when the pool ships
    a tracer into the worker via the trace protocol)."""
    with obs_trace.maybe_span("work.outer", bytes_in=int(arg)) as sp:
        with obs_trace.maybe_span("work.inner"):
            time.sleep(0.001)
        if sp is not None:
            sp.set(bytes_out=2 * int(arg))
    return arg


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Tests control activation explicitly; never leak a global tracer."""
    yield
    deactivate()


class TestSpanTree:
    def test_nested_spans_form_a_tree(self):
        tr = Tracer()
        with tr.span("root") as root:
            with tr.span("a") as a:
                with tr.span("a1"):
                    pass
            with tr.span("b"):
                pass
        assert tr.roots() == [root]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in a.children] == ["a1"]
        assert all(s.done for s in tr.find("a1"))
        assert a.parent_id == root.span_id

    def test_durations_nest(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                time.sleep(0.002)
        assert inner.duration_s > 0
        assert outer.duration_s >= inner.duration_s
        assert outer.self_s() == pytest.approx(
            outer.duration_s - inner.duration_s, abs=1e-9
        )

    def test_self_time_clamped_for_overlapping_children(self):
        # children recorded from parallel workers can overlap the parent
        tr = Tracer()
        root = tr.begin("root")
        tr.record("w1", 0.0, 1.0, parent=root)
        tr.record("w2", 0.0, 1.0, parent=root)
        tr.end(root)
        assert root.self_s() == 0.0

    def test_explicit_parent_across_threads(self):
        tr = Tracer()
        root = tr.begin("request")
        done = threading.Event()

        def worker():
            child = tr.begin("stage", parent=root)
            tr.end(child)
            done.set()

        threading.Thread(target=worker).start()
        assert done.wait(5)
        tr.end(root)
        assert [c.name for c in root.children] == ["stage"]

    def test_parent_by_span_id(self):
        tr = Tracer()
        root = tr.begin("root")
        child = tr.begin("child", parent=root.span_id)
        assert child.parent_id == root.span_id
        assert root.children == [child]

    def test_attach_makes_span_current_without_closing(self):
        tr = Tracer()
        root = tr.begin("request")
        with tr.attach(root):
            with tr.span("nested"):
                pass
        assert not root.done  # attach never closes
        assert [c.name for c in root.children] == ["nested"]
        assert tr.current() is None

    def test_record_finished_interval(self):
        tr = Tracer()
        sp = tr.record("wait", 10.0, 10.5, priority="bulk")
        assert sp.done
        assert sp.duration_s == pytest.approx(0.5)
        assert sp.attrs["priority"] == "bulk"

    def test_roundtrip_dict(self):
        tr = Tracer()
        with tr.span("root", bytes_in=7) as root:
            with tr.span("child"):
                pass
        clone = Span.from_dict(root.to_dict())
        assert clone.name == "root"
        assert clone.attrs == {"bytes_in": 7}
        assert clone.duration_s == pytest.approx(root.duration_s)
        assert [c.name for c in clone.children] == ["child"]

    def test_concurrent_begins_thread_safe(self):
        tr = Tracer()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def hammer(i):
            barrier.wait()
            for k in range(per_thread):
                with tr.span(f"t{i}"):
                    pass

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.roots()) == n_threads * per_thread

    def test_per_thread_nesting_is_independent(self):
        tr = Tracer()
        inner_parent = {}
        ready = threading.Barrier(2)

        def worker(tag):
            with tr.span(f"outer.{tag}"):
                ready.wait()  # both threads inside their outer span
                with tr.span(f"inner.{tag}") as sp:
                    inner_parent[tag] = sp.parent_id

        threads = [threading.Thread(target=worker, args=(t,)) for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        outer = {s.name: s.span_id for s in tr.roots()}
        assert inner_parent["a"] == outer["outer.a"]
        assert inner_parent["b"] == outer["outer.b"]


class TestAdoption:
    def test_adopt_reparents_under_parent(self):
        worker = Tracer()
        with worker.span("work.outer"):
            with worker.span("work.inner"):
                pass
        shipped = [s.to_dict() for s in worker.roots()]

        main = Tracer()
        req = main.begin("request")
        main.adopt(req, shipped)
        main.end(req)
        assert [c.name for c in req.children] == ["work.outer"]
        assert req.children[0].parent_id == req.span_id
        assert [c.name for c in req.children[0].children] == ["work.inner"]
        # adopted spans are indexed: addressable as explicit parents
        inner = main.find("work.inner")[0]
        extra = main.begin("late", parent=inner.span_id)
        assert extra.parent_id == inner.span_id

    def test_adopt_without_parent_adds_roots(self):
        worker = Tracer()
        with worker.span("solo"):
            pass
        main = Tracer()
        main.adopt(None, [s.to_dict() for s in worker.roots()])
        assert [r.name for r in main.roots()] == ["solo"]
        assert main.roots()[0].parent_id is None


class TestGuard:
    def test_maybe_span_disabled_is_shared_nullcontext(self):
        assert current_tracer() is None
        cm1 = maybe_span("x")
        cm2 = maybe_span("y", bytes_in=3)
        assert cm1 is cm2  # singleton: no per-call allocation
        with cm1 as sp:
            assert sp is None

    def test_activate_routes_spans(self):
        tr = Tracer()
        activate(tr)
        try:
            with maybe_span("stage", bytes_in=1) as sp:
                assert sp is not None
        finally:
            deactivate()
        assert [r.name for r in tr.roots()] == ["stage"]
        assert maybe_span("after") is not tr  # disabled again
        assert current_tracer() is None

    def test_thread_override_beats_global(self):
        global_tr, local_tr = Tracer(), Tracer()
        activate(global_tr)
        try:
            prev = set_thread_tracer(local_tr)
            try:
                with maybe_span("stage"):
                    pass
            finally:
                set_thread_tracer(prev)
            assert [r.name for r in local_tr.roots()] == ["stage"]
            assert global_tr.roots() == []
        finally:
            deactivate()

    def test_disabled_sentinel_suppresses_global(self):
        tr = Tracer()
        activate(tr)
        try:
            prev = set_thread_tracer(DISABLED)
            try:
                assert current_tracer() is None
                with maybe_span("stage") as sp:
                    assert sp is None
            finally:
                set_thread_tracer(prev)
        finally:
            deactivate()
        assert tr.roots() == []

    def test_tracing_context_manager(self):
        with tracing() as tr:
            with maybe_span("inside"):
                pass
        assert current_tracer() is None
        assert [r.name for r in tr.roots()] == ["inside"]


class TestPoolIntegration:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_spans_reparent_under_request(self, backend):
        tr = Tracer()
        with WorkerPool(nworkers=1, backend=backend, warmup=False) as pool:
            pool.wait_ready()
            req = tr.begin("request")
            fut = pool.submit(
                "test.traced_work", 21, trace=TraceContext(tr, req)
            )
            assert fut.result(timeout=30) == 21
            tr.end(req)
        task_spans = [c for c in req.children if c.name.startswith("pool.task.")]
        assert len(task_spans) == 1
        task = task_spans[0]
        assert task.attrs["backend"] == backend
        outer = [c for c in task.children if c.name == "work.outer"]
        assert len(outer) == 1
        assert outer[0].attrs == {"bytes_in": 21, "bytes_out": 42}
        assert [c.name for c in outer[0].children] == ["work.inner"]
        if backend == "process":
            assert outer[0].pid != req.pid  # genuinely crossed a process

    def test_ambient_submission_auto_traces(self):
        tr = Tracer()
        activate(tr)
        try:
            with WorkerPool(nworkers=1, backend="thread", warmup=False) as pool:
                pool.wait_ready()
                with tr.span("request") as req:
                    fut = pool.submit("test.traced_work", 5)
                assert fut.result(timeout=30) == 5
        finally:
            deactivate()
        # with no explicit TraceContext the ambient tracer + current span
        # were captured at submit time
        assert [c.name for c in req.children if c.name.startswith("pool.task.")]
        assert tr.find("work.outer")

    def test_untraced_submission_ships_no_spans(self):
        # a globally-activated tracer must NOT receive stray spans from a
        # worker thread running an untraced task (thread backend shares the
        # process, so only the worker's DISABLED override prevents it)
        tr = Tracer()
        activate(tr)
        prev = set_thread_tracer(DISABLED)  # suppress submit-side capture
        try:
            with WorkerPool(nworkers=1, backend="thread", warmup=False) as pool:
                pool.wait_ready()
                assert pool.submit("test.traced_work", 1).result(timeout=30) == 1
        finally:
            set_thread_tracer(prev)
            deactivate()
        assert tr.find("work.outer") == []
        assert tr.roots() == []

    def test_spans_ship_even_when_task_fails(self):
        tr = Tracer()

        @register_task("test.traced_fail")
        def _traced_fail(arg):
            with obs_trace.maybe_span("fail.stage"):
                raise ValueError("boom")

        with WorkerPool(nworkers=1, backend="thread", warmup=False) as pool:
            pool.wait_ready()
            req = tr.begin("request")
            fut = pool.submit("test.traced_fail", 0, trace=TraceContext(tr, req))
            with pytest.raises(ValueError, match="boom"):
                fut.result(timeout=30)
            tr.end(req)
        assert len(tr.find("fail.stage")) == 1


class TestServiceIntegration:
    def test_service_trace_covers_wall_time(self):
        from repro.serve.service import CompressionService

        tr = Tracer()
        rng = seeded_rng(0)
        data = np.cumsum(rng.standard_normal(1 << 16)).astype(np.float32)
        activate(tr)
        try:
            with CompressionService(workers=2, backend="thread", tracer=tr) as svc:
                svc.pool.wait_ready()
                t0 = time.perf_counter()
                blob = svc.compress(data, rel=1e-3).result(timeout=60)
                recon = svc.decompress(blob).result(timeout=60)
                wall = time.perf_counter() - t0
        finally:
            deactivate()
        np.testing.assert_allclose(recon, data, atol=1e-3 * np.ptp(data))

        from repro.obs import coverage

        cov = coverage(tr.roots(), wall)
        assert 0.95 <= cov <= 1.0 + 1e-9
        # the codec stages of both directions are all present
        for stage in ("codec.quantize", "codec.fle", "codec.fle_decode",
                      "codec.dequantize"):
            assert tr.find(stage), f"missing {stage}"
        # stage durations sum consistently: children fit inside their parent
        comp = tr.find("codec.compress")[0]
        assert sum(c.duration_s for c in comp.children) <= comp.duration_s * 1.05

    def test_decompress_cache_hit_span(self):
        from repro.serve.service import CompressionService

        tr = Tracer()
        data = np.linspace(0, 1, 4096, dtype=np.float32)
        with CompressionService(workers=1, backend="thread", tracer=tr) as svc:
            blob = svc.compress(data, rel=1e-3).result(timeout=60)
            svc.decompress(blob).result(timeout=60)
            svc.decompress(blob).result(timeout=60)  # hit
        dec = tr.find("service.decompress")
        assert [s.attrs["cache_hit"] for s in dec] == [False, True]
        assert all(s.done for s in dec)
