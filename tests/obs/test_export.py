"""Exporters: JSON dump, folded stacks, Prometheus text, stage table."""

import json

import pytest

from repro.obs.export import (
    coverage,
    folded,
    prometheus_text,
    spans_to_json,
    stage_rows,
    stage_table,
    summarize,
    walk,
)
from repro.obs.trace import Tracer
from repro.serve.stats import MetricsRegistry


def _sample_tracer() -> Tracer:
    """request(0..1.0) -> compress(0..0.6) -> quantize(0..0.2), fle(0.2..0.6);
    plus a second lone quantize root."""
    tr = Tracer()
    req = tr.begin("request", bytes_in=1000)
    comp = tr.begin("compress", parent=req)
    q = tr.record("quantize", 0.0, 0.2, parent=comp)
    f = tr.record("fle", 0.2, 0.6, parent=comp, bytes_out=100)
    comp.t0, comp.t1 = 0.0, 0.6
    req.t0, req.t1 = 0.0, 1.0
    tr.record("quantize", 5.0, 5.1)
    assert q.done and f.done
    return tr


class TestWalkAndJson:
    def test_walk_depth_first(self):
        tr = _sample_tracer()
        assert [s.name for s in walk(tr)] == [
            "request", "compress", "quantize", "fle", "quantize",
        ]

    def test_json_roundtrips(self):
        tr = _sample_tracer()
        data = json.loads(spans_to_json(tr))
        assert len(data) == 2
        assert data[0]["name"] == "request"
        assert data[0]["children"][0]["children"][1]["attrs"] == {"bytes_out": 100}
        # accepts a span list as well as a tracer
        assert json.loads(spans_to_json(tr.roots())) == data


class TestFolded:
    def test_paths_weighted_by_self_time_us(self):
        lines = dict(
            line.rsplit(" ", 1) for line in folded(_sample_tracer()).splitlines()
        )
        assert int(lines["request"]) == pytest.approx(400_000, abs=1)
        assert "request;compress" not in lines  # zero self time: dropped
        assert int(lines["request;compress;quantize"]) == pytest.approx(200_000, abs=1)
        assert int(lines["request;compress;fle"]) == pytest.approx(400_000, abs=1)
        assert int(lines["quantize"]) == pytest.approx(100_000, abs=1)

    def test_zero_self_time_paths_dropped(self):
        tr = Tracer()
        root = tr.record("a", 0.0, 1.0)
        tr.record("b", 0.0, 1.0, parent=root)  # child consumes all of a
        out = folded(tr)
        assert "a;b 1000000" in out
        assert "\na " not in out and not out.startswith("a ")


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("pool.tasks").inc(3)
        reg.gauge("queue_depth").set(2)
        reg.gauge("queue_depth").set(1)
        h = reg.histogram("latency_s")
        # log2 buckets start at 1us; 100s overflows the last (~67s) bound
        for v in (2e-06, 1e-05, 100.0):
            h.observe(v)
        text = prometheus_text(reg, prefix="x")
        lines = text.splitlines()
        assert "x_pool_tasks_total 3.0" in lines
        assert "x_queue_depth 1.0" in lines
        assert "x_queue_depth_max 2.0" in lines
        # cumulative buckets: exact-bound 2us lands at le=2e-06,
        # 1e-05 at le=1.6e-05, and the overflow only under +Inf
        assert 'x_latency_s_bucket{le="2e-06"} 1' in lines
        assert 'x_latency_s_bucket{le="1.6e-05"} 2' in lines
        assert 'x_latency_s_bucket{le="+Inf"} 3' in lines
        assert "x_latency_s_count 3" in lines
        assert "x_latency_s_sum 100.000012" in lines
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == "\n"


class TestStageTable:
    def test_rows_aggregate_by_name(self):
        rows = {r["name"]: r for r in stage_rows(_sample_tracer())}
        assert rows["quantize"]["count"] == 2
        assert rows["quantize"]["total_s"] == pytest.approx(0.3)
        assert rows["request"]["self_s"] == pytest.approx(0.4)
        assert rows["request"]["bytes_in"] == 1000
        assert rows["fle"]["bytes_out"] == 100
        # pipeline order: first depth-first appearance
        assert [r["name"] for r in stage_rows(_sample_tracer())] == [
            "request", "compress", "quantize", "fle",
        ]

    def test_self_time_sums_to_wall_minus_gap(self):
        tr = _sample_tracer()
        rows = stage_rows(tr)
        total_self = sum(r["self_s"] for r in rows)
        # 1.0s request tree + 0.1s lone root, no overlap double-counting
        assert total_self == pytest.approx(1.1)

    def test_table_renders_gap_row(self):
        table = stage_table(_sample_tracer(), wall_s=1.2)
        assert "(untraced)" in table
        assert "request" in table.splitlines()[2]
        # gap = 1.2 - 1.1 = 0.1 s = 100 ms
        gap_line = [line for line in table.splitlines() if "(untraced)" in line][0]
        assert "100.000" in gap_line

    def test_coverage(self):
        tr = _sample_tracer()
        # roots: 1.0 + 0.1 = 1.1 of 1.1 wall
        assert coverage(tr, 1.1) == pytest.approx(1.0)
        assert coverage(tr, 2.2) == pytest.approx(0.5)
        assert coverage(tr, 0.0) == 0.0

    def test_summarize(self):
        table, cov = summarize(_sample_tracer(), 1.1)
        assert isinstance(table, str) and "(untraced)" in table
        assert cov == pytest.approx(1.0)
