"""Unit tests for the synthetic field generators."""

import numpy as np
import pytest

from repro.datasets import generators as G
from repro.datasets.spectral import band_limited_noise, power_law_field


class TestSpectral:
    def test_normalized(self):
        f = power_law_field((64, 64), 3.0, seed=1)
        assert abs(float(f.mean())) < 1e-6
        assert float(f.std()) == pytest.approx(1.0, abs=1e-3)

    def test_deterministic_in_seed(self):
        a = power_law_field((32, 32), 2.0, seed=5)
        b = power_law_field((32, 32), 2.0, seed=5)
        c = power_law_field((32, 32), 2.0, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_higher_beta_is_smoother(self):
        rough = power_law_field((256, 256), 1.0, seed=2, dtype=np.float64)
        smooth = power_law_field((256, 256), 4.0, seed=2, dtype=np.float64)
        assert np.abs(np.diff(smooth, axis=1)).mean() < np.abs(np.diff(rough, axis=1)).mean()

    def test_k_cut_limits_gradients(self):
        wide = power_law_field((64, 256), 3.0, seed=3, dtype=np.float64)
        cut = power_law_field((64, 256), 3.0, seed=3, dtype=np.float64, k_cut=0.01)
        assert np.abs(np.diff(cut, axis=1)).std() < 0.3 * np.abs(np.diff(wide, axis=1)).std()

    def test_band_limited_noise_oscillates(self):
        f = band_limited_noise((64, 256), 0.05, 0.15, seed=4, dtype=np.float64)
        # Energy concentrated in the band: autocorrelation changes sign
        # within ~1/k samples, unlike a low-pass field.
        assert float(f.std()) == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("shape", [(128,), (32, 32), (16, 16, 16)])
    def test_all_dimensionalities(self, shape):
        f = power_law_field(shape, 2.5, seed=7)
        assert f.shape == shape
        assert np.isfinite(f).all()


class TestGenerators:
    def test_sparse_wavefield_zero_fraction(self):
        f = G.sparse_wavefield((32, 32, 32), active_fraction=0.1, beta=3.0, seed=1)
        assert 0.85 <= float(np.mean(f == 0)) <= 0.95

    def test_particle_smoothness_monotone_in_compressibility(self):
        smooth = G.particle_field(100_000, smoothness=0.99, seed=2)
        rough = G.particle_field(100_000, smoothness=0.1, seed=2)
        rel = lambda f: np.abs(np.diff(f.astype(np.float64))).mean() / (f.max() - f.min())
        assert rel(smooth) < rel(rough)

    def test_lattice_voids_are_exact_zero(self):
        f = G.lattice_field((16, 16, 64), period=16, noise=0.2, seed=3)
        assert np.mean(f == 0) > 0.2

    def test_turbulence_is_positive_heavy_tailed(self):
        f = G.turbulence_field((32, 32, 32), beta=3.0, seed=4).astype(np.float64)
        assert (f > 0).all()
        assert f.max() / np.median(f) > 3

    def test_hpc_field_zero_fraction(self):
        f = G.hpc_field((16, 16, 128), seed=5, zero_fraction=0.8, zero_envelope_kcut=0.05)
        assert 0.75 <= float(np.mean(f == 0)) <= 0.85

    def test_hpc_field_inflation_extends_range(self):
        base = G.hpc_field((16, 16, 128), seed=6, k_cut=0.02)
        inflated = G.hpc_field((16, 16, 128), seed=6, k_cut=0.02, inflate_range=50.0)
        assert np.abs(inflated).max() > 5 * np.abs(base).max()

    def test_hpc_field_body_power_concentrates(self):
        flat = G.hpc_field((16, 16, 128), seed=7, body_power=1.0).astype(np.float64)
        peaked = G.hpc_field((16, 16, 128), seed=7, body_power=4.0).astype(np.float64)
        # Higher power -> more mass near zero relative to the std.
        assert np.median(np.abs(peaked)) < np.median(np.abs(flat))

    def test_all_generators_finite_f32(self):
        for name, fn in G.GENERATORS.items():
            if name == "particle":
                f = fn(10_000, smoothness=0.5, seed=1)
            elif name == "oscillatory":
                f = fn((8, 8, 64), k_center=0.05, seed=1)
            elif name == "lattice":
                f = fn((8, 8, 64), period=16, noise=0.1, seed=1)
            elif name == "sparse_wavefield":
                f = fn((8, 8, 64), active_fraction=0.3, beta=3.0, seed=1)
            elif name == "turbulence":
                f = fn((8, 8, 64), beta=3.0, seed=1)
            elif name == "smooth":
                f = fn((8, 8, 64), beta=3.0, noise=0.01, seed=1)
            else:
                f = fn((8, 8, 64), seed=1)
            assert f.dtype == np.float32, name
            assert np.isfinite(f).all(), name
