"""Unit tests for the dataset registry and raw I/O."""

import numpy as np
import pytest

from repro import compress, compression_ratio
from repro.datasets import (
    ALL_DATASETS,
    DOUBLE_PRECISION,
    SINGLE_PRECISION,
    get_dataset,
    read_field,
    write_field,
)


class TestRegistryMetadata:
    def test_table2_datasets_present(self):
        names = {d.name for d in SINGLE_PRECISION}
        assert names == {
            "CESM-ATM", "HACC", "RTM", "SCALE", "QMCPack", "NYX",
            "JetIn", "Miranda", "SynTruss",
        }

    def test_table4_datasets_present(self):
        assert {d.name for d in DOUBLE_PRECISION} == {"S3D", "NWChem"}

    def test_paper_metadata_matches_table2(self):
        cesm = get_dataset("CESM-ATM")
        assert cesm.paper_dims == "3600x1800x26"
        assert cesm.paper_fields == 33
        assert cesm.paper_size_gb == pytest.approx(20.71)
        assert get_dataset("HACC").paper_fields == 6
        assert get_dataset("RTM").paper_size_gb == pytest.approx(3.99)

    def test_dtypes(self):
        for d in SINGLE_PRECISION:
            assert d.dtype == np.float32
        for d in DOUBLE_PRECISION:
            assert d.dtype == np.float64

    def test_hacc_has_six_fields(self):
        assert [f.name for f in get_dataset("HACC").fields] == ["xx", "yy", "zz", "vx", "vy", "vz"]

    def test_rtm_has_three_pressure_fields(self):
        assert [f.name for f in get_dataset("RTM").fields] == ["P1000", "P2000", "P3000"]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("nope")

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            get_dataset("RTM").field("P9000")


class TestGeneration:
    def test_deterministic(self):
        f = get_dataset("Miranda").fields[0]
        assert np.array_equal(f.generate(), f.generate())

    def test_dtype_honored(self):
        f = get_dataset("S3D").fields[0]
        assert f.generate(np.float64).dtype == np.float64

    def test_scale_grows_first_axis(self):
        f = get_dataset("JetIn").fields[0]
        a = f.generate(scale=1)
        b = f.generate(scale=2)
        assert b.size == 2 * a.size

    def test_all_fields_generate_finite(self):
        for ds in ALL_DATASETS:
            for f in ds.fields:
                data = f.generate(ds.dtype)
                assert np.isfinite(data).all(), f"{ds.name}/{f.name}"
                assert data.size > 100_000, f"{ds.name}/{f.name}"


class TestTableIIIShape:
    """The qualitative Table III relationships the registry was tuned for."""

    @staticmethod
    def dataset_cr(name, mode, rel=1e-3):
        ds = get_dataset(name)
        crs = []
        for f in ds.fields:
            data = f.generate(ds.dtype)
            crs.append(compression_ratio(data, compress(data, rel=rel, mode=mode)))
        return float(np.mean(crs))

    def test_jetin_is_the_most_compressible(self):
        jet = self.dataset_cr("JetIn", "outlier")
        for other in ("Miranda", "QMCPack", "HACC", "SynTruss"):
            assert jet > 5 * self.dataset_cr(other, "outlier")

    def test_outlier_gain_large_on_smooth_datasets(self):
        for name in ("HACC", "Miranda"):
            gain = self.dataset_cr(name, "outlier") / self.dataset_cr(name, "plain")
            assert gain > 1.4, name

    def test_outlier_gain_small_on_unsmooth_datasets(self):
        for name in ("SynTruss", "JetIn", "RTM"):
            gain = self.dataset_cr(name, "outlier") / self.dataset_cr(name, "plain")
            assert gain < 1.15, name

    def test_smaller_bound_lower_ratio(self):
        a = self.dataset_cr("Miranda", "outlier", rel=1e-2)
        b = self.dataset_cr("Miranda", "outlier", rel=1e-4)
        assert a > b


class TestIO:
    def test_round_trip_f32(self, tmp_path, rng):
        data = rng.normal(size=(8, 16)).astype(np.float32)
        path = tmp_path / "field.f32"
        write_field(path, data)
        back = read_field(path, dims=(8, 16))
        assert np.array_equal(back, data)

    def test_round_trip_f64(self, tmp_path, rng):
        data = rng.normal(size=100)
        path = tmp_path / "field.f64"
        write_field(path, data)
        assert np.array_equal(read_field(path), data)

    def test_dim_mismatch_rejected(self, tmp_path, rng):
        path = tmp_path / "x.f32"
        write_field(path, rng.normal(size=10).astype(np.float32))
        with pytest.raises(ValueError):
            read_field(path, dims=(5, 5))

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            read_field(tmp_path / "x.dat")
