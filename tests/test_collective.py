"""Tests for compression-accelerated communication (Fig. 1 scenario)."""

import numpy as np
import pytest

from repro.collective import (
    ETH_25G,
    IB_HDR,
    NVLINK3,
    PCIE4,
    Link,
    crossover_bandwidth,
    ring_allgather,
    send,
)

from tests.helpers import assert_error_bounded, value_range


@pytest.fixture
def gradient(rng):
    return (np.cumsum(rng.normal(size=100_000)) * 1e-3).astype(np.float32)


class TestSend:
    def test_raw_send_is_exact(self, gradient):
        out, rep = send(gradient, PCIE4)
        assert np.array_equal(out, gradient)
        assert rep.bytes_on_wire == gradient.nbytes
        assert rep.compress_s == 0.0

    def test_compressed_send_is_bounded(self, gradient):
        out, rep = send(gradient, PCIE4, rel=1e-3)
        assert_error_bounded(gradient, out, 1e-3 * value_range(gradient))
        assert rep.bytes_on_wire < gradient.nbytes
        assert rep.compress_s > 0 and rep.decompress_s > 0

    def test_compression_wins_on_slow_links(self, gradient):
        _, raw = send(gradient, ETH_25G)
        _, comp = send(gradient, ETH_25G, rel=1e-3)
        assert comp.total_s < raw.total_s

    def test_compression_loses_on_nvlink(self, gradient):
        # NVLink moves bytes faster than even cuSZp2 can shrink them.
        _, raw = send(gradient, NVLINK3)
        _, comp = send(gradient, NVLINK3, rel=1e-3)
        assert comp.total_s > raw.total_s

    def test_report_breakdown_sums(self, gradient):
        _, rep = send(gradient, IB_HDR, rel=1e-3)
        assert rep.total_s == pytest.approx(sum(t for _, t in rep.steps))


class TestCrossover:
    def test_crossover_between_ethernet_and_nvlink(self, gradient):
        # The crossover bandwidth falls strictly between the slow fabric
        # where compression wins and NVLink where it loses.
        b = crossover_bandwidth(gradient, 1e-3)
        assert ETH_25G.bandwidth_gbs < b < NVLINK3.bandwidth_gbs

    def test_crossover_consistent_with_send(self, gradient):
        b = crossover_bandwidth(gradient, 1e-3)
        slow = Link("slow", b * 0.5)
        fast = Link("fast", b * 2.0)
        _, raw_s = send(gradient, slow)
        _, cmp_s = send(gradient, slow, rel=1e-3)
        _, raw_f = send(gradient, fast)
        _, cmp_f = send(gradient, fast, rel=1e-3)
        assert cmp_s.total_s < raw_s.total_s
        assert cmp_f.total_s > raw_f.total_s

    def test_incompressible_data_has_no_crossover(self, rng):
        noise = rng.normal(size=50_000).astype(np.float32)
        b_noise = crossover_bandwidth(noise, 1e-3)
        b_smooth = crossover_bandwidth(np.cumsum(rng.normal(size=50_000)).astype(np.float32), 1e-3)
        assert b_noise < b_smooth  # better ratio -> higher crossover


class TestRingAllgather:
    def test_raw_allgather_exact(self, rng):
        chunks = [rng.normal(size=1000).astype(np.float32) for _ in range(4)]
        received, rep = ring_allgather(chunks, PCIE4)
        for rank_view in received:
            for src, arr in rank_view.items():
                assert np.array_equal(arr, chunks[src])
        assert rep.transfer_s > 0

    def test_compressed_allgather_bounded(self, rng):
        chunks = [np.cumsum(rng.normal(size=5000)).astype(np.float32) for _ in range(3)]
        received, rep = ring_allgather(chunks, IB_HDR, rel=1e-3)
        for rank_view in received:
            for src, arr in rank_view.items():
                assert_error_bounded(chunks[src], arr, 1e-3 * value_range(chunks[src]))
        assert rep.bytes_on_wire < sum(c.nbytes for c in chunks) * 2

    def test_compression_accelerates_collective_on_slow_fabric(self, rng):
        chunks = [np.cumsum(rng.normal(size=50_000)).astype(np.float32) for _ in range(4)]
        _, raw = ring_allgather(chunks, ETH_25G)
        _, comp = ring_allgather(chunks, ETH_25G, rel=1e-3)
        assert comp.total_s < raw.total_s

    def test_needs_two_ranks(self, gradient):
        with pytest.raises(ValueError):
            ring_allgather([gradient], PCIE4)

    def test_step_count_scales_with_ranks(self, rng):
        chunks3 = [rng.normal(size=1000).astype(np.float32) for _ in range(3)]
        chunks6 = chunks3 * 2
        _, r3 = ring_allgather(chunks3, PCIE4)
        _, r6 = ring_allgather(chunks6, PCIE4)
        assert r6.transfer_s > r3.transfer_s


class TestResilientSend:
    """Integrity-checked transfer over a lossy link (format-v2 payoff)."""

    @staticmethod
    def clean_decode(data, group_blocks=64):
        from repro.core import compress, decompress

        return decompress(compress(data, rel=1e-3, mode="outlier", group_blocks=group_blocks))

    def test_clean_link_single_attempt(self, gradient):
        from repro.collective import send_resilient

        out, rep = send_resilient(gradient, PCIE4, rel=1e-3, seed=0)
        assert rep.attempts == 1 and rep.retransmitted_bytes == 0
        assert rep.delivered_ok and not rep.degraded
        assert np.array_equal(out, self.clean_decode(gradient, group_blocks=4096))

    def test_group_retransmit_beats_full(self, gradient):
        # Same seed, same channel dice: repairing only the damaged block
        # groups must move strictly fewer bytes than resending everything.
        from repro.collective import LossyLink, send_resilient

        link = LossyLink("lossy", 2.8, 20e-6, loss_rate=0.6)
        clean = self.clean_decode(gradient)
        out_g, rg = send_resilient(gradient, link, rel=1e-3, policy="group", seed=1, group_blocks=64)
        out_f, rf = send_resilient(gradient, link, rel=1e-3, policy="full", seed=1, group_blocks=64)
        assert rg.corrupt_events > 0 and rf.corrupt_events > 0  # dice actually rolled
        assert np.array_equal(out_g, clean) and np.array_equal(out_f, clean)
        assert rg.retransmitted_bytes < rf.retransmitted_bytes
        assert rg.bytes_on_wire < rf.bytes_on_wire
        assert rg.groups_retransmitted > 0

    def test_degrades_to_exact_raw_transfer(self, gradient):
        # loss_rate=1.0: every retry is corrupted, so after max_retries the
        # sender falls back to the reliable raw path -- and still delivers.
        from repro.collective import LossyLink, send_resilient

        link = LossyLink("hopeless", 2.8, loss_rate=1.0)
        out, rep = send_resilient(gradient, link, rel=1e-3, max_retries=3, seed=2, group_blocks=64)
        assert rep.degraded and rep.delivered_ok
        assert np.array_equal(out, gradient)  # raw path is exact
        assert rep.attempts == 1 + 3
        assert rep.bytes_on_wire >= gradient.nbytes  # the raw fallback itself

    def test_truncating_channel_recovers_or_degrades(self, gradient):
        from repro.collective import LossyLink, send_resilient

        link = LossyLink("flaky", 2.8, loss_rate=0.5, fault="truncate")
        clean = self.clean_decode(gradient)
        out, rep = send_resilient(gradient, link, rel=1e-3, seed=1, group_blocks=64)
        assert rep.delivered_ok
        assert np.array_equal(out, gradient if rep.degraded else clean)

    def test_burst_channel(self, gradient):
        from repro.collective import LossyLink, send_resilient

        link = LossyLink("bursty", 2.8, loss_rate=0.7, fault="burst", burst=256)
        clean = self.clean_decode(gradient)
        out, rep = send_resilient(gradient, link, rel=1e-3, seed=1, group_blocks=64)
        assert rep.delivered_ok
        assert np.array_equal(out, gradient if rep.degraded else clean)

    def test_byte_accounting_consistent(self, gradient):
        from repro.collective import LossyLink, send_resilient

        link = LossyLink("lossy", 2.8, loss_rate=0.6)
        _, rep = send_resilient(gradient, link, rel=1e-3, seed=1, group_blocks=64)
        first_send = rep.bytes_on_wire - rep.retransmitted_bytes
        assert first_send > 0
        assert rep.transfer_s > 0 and rep.total_s > rep.transfer_s

    def test_rejects_unknown_policy(self, gradient):
        from repro.collective import send_resilient

        with pytest.raises(ValueError):
            send_resilient(gradient, PCIE4, policy="hope")


class TestResilientEdgeCases:
    """Boundary fields that must never enter the retry loop incorrectly."""

    def test_empty_field_delivered_without_compression(self):
        from repro.collective import LossyLink, send_resilient

        # even a hopeless channel cannot corrupt zero bytes: one attempt,
        # delivered, no corruption events, no degradation
        link = LossyLink("hopeless", 2.8, loss_rate=1.0)
        out, rep = send_resilient(np.array([], dtype=np.float32), link, rel=1e-3)
        assert out.size == 0 and out.dtype == np.float32
        assert rep.delivered_ok and not rep.degraded
        assert rep.attempts == 1
        assert rep.corrupt_events == 0
        assert rep.compress_s == 0.0 and rep.decompress_s == 0.0

    def test_empty_field_chunked_variant(self):
        from repro.collective import LossyLink, send_resilient_chunked

        link = LossyLink("hopeless", 2.8, loss_rate=1.0)
        out, rep = send_resilient_chunked(np.array([], dtype=np.float32), link)
        assert out.size == 0
        assert rep.delivered_ok and rep.attempts == 1 and rep.corrupt_events == 0

    def test_single_group_field_group_policy(self, rng):
        # a field smaller than one checksum group: group-granular
        # retransmission degenerates to full-stream but must still work
        from repro.collective import LossyLink, send_resilient

        tiny = np.cumsum(rng.normal(size=100)).astype(np.float32)
        link = LossyLink("lossy", 2.8, loss_rate=0.5)
        out, rep = send_resilient(
            tiny, link, rel=1e-3, policy="group", seed=3, group_blocks=4096
        )
        assert rep.delivered_ok
        if not rep.degraded:
            assert_error_bounded(tiny, out, 1e-3 * value_range(tiny))

    def test_single_element_field(self):
        from repro.collective import PCIE4, send_resilient

        one = np.array([3.25], dtype=np.float32)
        out, rep = send_resilient(one, PCIE4, rel=1e-3)
        assert rep.delivered_ok and rep.attempts == 1
        assert out.size == 1


class TestResilientChunked:
    def test_lossless_link_matches_monolithic(self, gradient):
        from repro.collective import send_resilient, send_resilient_chunked

        mono, _ = send_resilient(gradient, PCIE4, rel=1e-3, group_blocks=64)
        # chunk_elems small enough to force several chunks
        out, rep = send_resilient_chunked(
            gradient, PCIE4, rel=1e-3, group_blocks=64, chunk_elems=16_384
        )
        assert rep.delivered_ok and not rep.degraded
        assert rep.attempts > 1  # one transmission per chunk
        assert np.array_equal(out, mono)  # group-aligned chunking is exact

    def test_lossy_link_bounded_and_accounted(self, gradient):
        from repro.collective import LossyLink, send_resilient_chunked

        link = LossyLink("lossy", 2.8, loss_rate=0.4)
        out, rep = send_resilient_chunked(
            gradient, link, rel=1e-3, seed=5, group_blocks=64, chunk_elems=16_384
        )
        assert rep.delivered_ok
        if not rep.degraded:
            assert_error_bounded(gradient, out, 1e-3 * value_range(gradient))
        assert rep.bytes_on_wire >= rep.retransmitted_bytes
        assert rep.transfer_s > 0

    def test_pooled_transfer_identical_and_faster_codec(self, gradient):
        from repro.collective import send_resilient_chunked
        from repro.serve import WorkerPool

        serial, rs = send_resilient_chunked(
            gradient, PCIE4, rel=1e-3, group_blocks=64, chunk_elems=16_384
        )
        with WorkerPool(nworkers=2, backend="thread", warmup=False) as pool:
            pooled, rp = send_resilient_chunked(
                gradient, PCIE4, rel=1e-3, group_blocks=64,
                chunk_elems=16_384, pool=pool,
            )
        assert np.array_equal(serial, pooled)
        # simulated codec time scales down with the worker count
        assert rp.compress_s == pytest.approx(rs.compress_s / 2)
        assert rp.decompress_s == pytest.approx(rs.decompress_s / 2)

    def test_rejects_unknown_policy(self, gradient):
        from repro.collective import send_resilient_chunked

        with pytest.raises(ValueError):
            send_resilient_chunked(gradient, PCIE4, policy="hope")
