"""Unit tests for error/SSIM/isosurface/ratio metrics."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.metrics import (
    bit_rate,
    boundary_displacement,
    check_error_bound,
    compression_ratio,
    curve,
    dominates,
    isosurface_preservation,
    level_set_iou,
    max_abs_error,
    nrmse,
    psnr,
    rate_to_ratio,
    ratio_for,
    ssim,
    ssim_slices,
    summarize,
)


class TestErrorMetrics:
    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.5, 2.8])
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_check_error_bound(self):
        a = np.array([0.0, 1.0])
        assert check_error_bound(a, a + 0.05, 0.1)
        assert not check_error_bound(a, a + 0.2, 0.1)

    def test_psnr_identical_is_inf(self):
        a = np.linspace(0, 1, 100)
        assert psnr(a, a) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros(100)
        a[0] = 1.0  # range 1
        b = a + 0.01  # mse = 1e-4
        assert psnr(a, b) == pytest.approx(40.0)

    def test_psnr_decreases_with_noise(self, rng):
        a = rng.normal(size=1000)
        small = psnr(a, a + rng.normal(size=1000) * 1e-4)
        big = psnr(a, a + rng.normal(size=1000) * 1e-2)
        assert small > big

    def test_nrmse_normalized(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        assert nrmse(a, b) == pytest.approx(np.sqrt(0.5) / 10)

    def test_nrmse_constant_data(self):
        a = np.full(5, 3.0)
        assert nrmse(a, a) == 0.0
        assert nrmse(a, a + 1) == float("inf")


class TestSSIM:
    def test_identical_is_one(self, rng):
        a = rng.normal(size=(32, 32))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, rng):
        a = np.cumsum(np.cumsum(rng.normal(size=(64, 64)), 0), 1)
        s1 = ssim(a, a + 0.001 * a.std() * rng.normal(size=a.shape))
        s2 = ssim(a, a + 0.3 * a.std() * rng.normal(size=a.shape))
        assert 1.0 >= s1 > s2

    def test_3d_volumes(self, rng):
        a = np.cumsum(rng.normal(size=(16, 16, 16)), axis=0)
        assert ssim(a, a) == pytest.approx(1.0)

    def test_slicewise(self, rng):
        a = np.cumsum(rng.normal(size=(8, 32, 32)), axis=1)
        assert ssim_slices(a, a) == pytest.approx(1.0)

    def test_constant_field(self):
        a = np.full((16, 16), 2.0)
        assert ssim(a, a) == 1.0
        assert ssim(a, a + 1.0) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))


class TestIsosurface:
    def test_identical_surfaces(self, rng):
        a = rng.normal(size=(16, 16, 16))
        assert level_set_iou(a, a, 0.0) == 1.0
        assert isosurface_preservation(a, a) == 1.0

    def test_perturbation_lowers_iou(self, rng):
        a = np.cumsum(rng.normal(size=(16, 16, 16)), axis=0)
        b = a + a.std() * rng.normal(size=a.shape)
        assert isosurface_preservation(a, b) < 0.9

    def test_empty_level_set(self):
        a = np.zeros((8, 8))
        assert level_set_iou(a, a, 5.0) == 1.0

    def test_boundary_displacement(self, rng):
        a = rng.normal(size=(16, 16))
        assert boundary_displacement(a, a, 0.0) == 0.0
        flipped = -a
        assert boundary_displacement(a, flipped, 0.0) > 0.5

    def test_error_bounded_recon_preserves_surfaces(self, rng):
        # The mechanism behind Fig. 18: a bounded-error reconstruction can
        # only move surfaces within an eb-thick shell.
        a = np.cumsum(np.cumsum(np.cumsum(rng.normal(size=(16, 16, 32)), 0), 1), 2).astype(np.float32)
        recon = decompress(compress(a, rel=1e-4))
        assert isosurface_preservation(a, recon.reshape(a.shape)) > 0.98


class TestRatios:
    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == 4.0
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_ratio_for(self, rng):
        data = rng.normal(size=1000).astype(np.float32)
        stream = np.zeros(500, dtype=np.uint8)
        assert ratio_for(data, stream) == 8.0

    def test_bit_rate(self, rng):
        data = rng.normal(size=1000).astype(np.float32)
        stream = np.zeros(1000, dtype=np.uint8)
        assert bit_rate(data, stream) == 8.0

    def test_rate_to_ratio(self):
        assert rate_to_ratio(4) == 8.0
        assert rate_to_ratio(16, elem_bits=64) == 4.0

    def test_summarize_format(self):
        assert summarize([1.0, 2.0, 3.0]) == "1.00~3.00 (avg: 2.00)"


class TestRateDistortion:
    def test_curve_monotone_for_cuszp2(self, rng):
        data = np.cumsum(rng.normal(size=30_000)).astype(np.float32)
        pts = curve(
            data,
            lambda d, rel: compress(d, rel=rel),
            decompress,
            rel_bounds=(1e-2, 1e-3, 1e-4),
        )
        rates = [p.bits_per_value for p in pts]
        psnrs = [p.psnr_db for p in pts]
        assert rates == sorted(rates)
        assert psnrs == sorted(psnrs)  # more bits, better quality

    def test_dominates(self):
        from repro.metrics import RDPoint

        good = [RDPoint(0, 1.0, 50.0), RDPoint(0, 2.5, 80.0), RDPoint(0, 4.0, 90.0)]
        bad = [RDPoint(0, 2.0, 55.0), RDPoint(0, 3.0, 70.0)]
        assert dominates(good, bad)
        assert not dominates(bad, good)
