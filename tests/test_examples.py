"""Smoke tests: the example scripts run to completion.

The fast examples run in-process on every test invocation; the two
sweep-heavy ones (climate, double precision) are exercised by the
benchmark suite's experiments instead and only checked for importability
here.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = [
    "quickstart.py",
    "seismic_random_access.py",
    "in_situ_checkpointing.py",
    "gpu_model_tour.py",
    "llm_gradient_compression.py",
]
HEAVY = ["climate_compression.py", "double_precision_chemistry.py"]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} printed nothing"


@pytest.mark.parametrize("script", FAST + HEAVY)
def test_example_compiles(script):
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")


def test_expected_output_markers():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert "Pass error check!" in proc.stdout
    assert "CUSZP2-O" in proc.stdout
