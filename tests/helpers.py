"""Assertion helpers shared across test modules."""

import numpy as np


def value_range(data: np.ndarray) -> float:
    return float(data.max() - data.min())


def assert_error_bounded(original: np.ndarray, recon: np.ndarray, eb_abs: float):
    """Max pointwise error must not exceed the bound.

    The codec's guarantee (like the CUDA original, which reconstructs with a
    floating multiply) is ``eb + half-ULP of the reconstructed value``: the
    quantization lattice point nearest to ``x`` can round to a representable
    float half an ULP further away.  We allow exactly that slack.
    """
    err = np.abs(recon.astype(np.float64) - original.astype(np.float64)).max()
    half_ulp = 0.5 * float(np.spacing(np.abs(recon).max()))
    limit = eb_abs * (1 + 1e-12) + half_ulp
    assert err <= limit, f"error {err} exceeds bound {eb_abs} (+{half_ulp} ULP slack)"
