"""Assertion helpers shared across test modules."""

import zlib

import numpy as np


def seeded_rng(*key) -> np.random.Generator:
    """The one way tests obtain randomness.

    Every test that needs random data calls ``seeded_rng(...)`` with an
    explicit key instead of ``np.random.default_rng`` / module-level
    ``np.random`` functions, so no test depends on global RNG state and
    every data draw is replayable from the key alone.  A single int key
    yields the exact same stream as ``np.random.default_rng(key)`` (so
    historical seeds keep their data); strings are folded in via CRC32,
    letting tests use self-describing keys like
    ``seeded_rng("cache-thread", tid)``.
    """
    if not key:
        raise TypeError("seeded_rng requires an explicit key")
    words = [
        k if isinstance(k, (int, np.integer)) else zlib.crc32(str(k).encode())
        for k in key
    ]
    if len(words) == 1:
        return np.random.default_rng(words[0])
    return np.random.default_rng(np.random.SeedSequence(words))


def value_range(data: np.ndarray) -> float:
    return float(data.max() - data.min())


def assert_error_bounded(original: np.ndarray, recon: np.ndarray, eb_abs: float):
    """Max pointwise error must not exceed the bound.

    The codec's guarantee (like the CUDA original, which reconstructs with a
    floating multiply) is ``eb + half-ULP of the reconstructed value``: the
    quantization lattice point nearest to ``x`` can round to a representable
    float half an ULP further away.  We allow exactly that slack.
    """
    err = np.abs(recon.astype(np.float64) - original.astype(np.float64)).max()
    half_ulp = 0.5 * float(np.spacing(np.abs(recon).max()))
    limit = eb_abs * (1 + 1e-12) + half_ulp
    assert err <= limit, f"error {err} exceeds bound {eb_abs} (+{half_ulp} ULP slack)"
