"""CompressedArray: sliced reads, write-back, flush, byte accounting."""

import numpy as np
import pytest

from repro.core import compress, decompress
from repro.core.integrity import verify
from repro.store import CompressedArray, StoreError


@pytest.fixture
def field_2d(rng):
    return np.cumsum(rng.normal(size=(37, 53)), axis=1).astype(np.float32)


@pytest.fixture
def arr_2d(field_2d):
    return CompressedArray.from_array(field_2d, rel=1e-3)


class TestReads:
    INDEXES = [
        (slice(None), slice(None)),
        (slice(3, 17), slice(10, 40, 3)),
        (slice(None, None, -2), -1),
        (5, 7),
        (Ellipsis, 4),
        (slice(20, 5),),  # empty
        (slice(None),),  # partial key
        (-3, slice(None, None, -1)),
    ]

    @pytest.mark.parametrize("key", INDEXES)
    def test_basic_indexing_matches_numpy(self, field_2d, arr_2d, key):
        eb = arr_2d.eb_abs
        got = np.asarray(arr_2d[key])
        want = np.asarray(field_2d[key])
        assert got.shape == want.shape
        assert got.dtype == want.dtype
        if want.size:
            assert np.abs(got.astype(np.float64) - want).max() <= eb * (1 + 1e-6)

    def test_reads_are_bit_identical_to_full_decode(self, field_2d, arr_2d):
        full = decompress(arr_2d.flush())
        assert np.asarray(arr_2d[:, :]).tobytes() == full.tobytes()
        assert np.asarray(arr_2d[4:30, 7:50]).tobytes() == full[4:30, 7:50].tobytes()

    def test_scalar_read_returns_scalar(self, arr_2d):
        v = arr_2d[3, 3]
        assert np.ndim(v) == 0

    def test_cache_serves_repeat_reads(self, arr_2d):
        arr_2d[0:8, 0:8]
        misses = arr_2d.cache.misses
        arr_2d[0:8, 0:8]
        assert arr_2d.cache.hits > 0
        assert arr_2d.cache.misses == misses

    def test_fancy_indexing_rejected(self, arr_2d):
        with pytest.raises(StoreError, match="basic indexing"):
            arr_2d[[1, 2, 3]]

    def test_out_of_bounds_scalar_rejected(self, arr_2d):
        with pytest.raises(StoreError, match="out of bounds"):
            arr_2d[99, 0]

    def test_too_many_indices_rejected(self, arr_2d):
        with pytest.raises(StoreError, match="too many"):
            arr_2d[1, 2, 3]

    def test_double_ellipsis_rejected(self, arr_2d):
        with pytest.raises(StoreError, match="Ellipsis"):
            arr_2d[..., ...]

    def test_3d_logical_shape(self, rng):
        data = np.cumsum(rng.normal(size=(9, 11, 13)), axis=0).astype(np.float32)
        arr = CompressedArray.from_array(data, abs=1e-2)
        assert arr.shape == (9, 11, 13)
        got = arr[2:7, ::2, 5]
        assert np.abs(got - data[2:7, ::2, 5]).max() <= 1e-2 * (1 + 1e-6)


class TestWrites:
    def test_write_visible_before_flush(self, arr_2d):
        arr_2d[10:20, 5:15] = 3.5
        assert np.allclose(arr_2d[10:20, 5:15], 3.5, atol=arr_2d.eb_abs)
        assert arr_2d.dirty_blocks > 0

    def test_flush_verifies_clean_and_matches_reads(self, field_2d, arr_2d):
        arr_2d[0, :] = 1.0
        arr_2d[-1, ::2] = -2.0
        buf = arr_2d.flush()
        assert arr_2d.dirty_blocks == 0 and arr_2d.dirty_nbytes == 0
        assert verify(buf).ok
        full = decompress(buf)
        assert full.shape == field_2d.shape
        assert full.tobytes() == np.asarray(arr_2d[:, :]).tobytes()
        assert full.tobytes() == arr_2d.to_numpy().tobytes()

    def test_flush_respects_error_bound(self, field_2d, arr_2d):
        mirror = field_2d.astype(np.float64).copy()
        arr_2d[3:30, 10] = 0.25
        mirror[3:30, 10] = 0.25
        full = decompress(arr_2d.flush()).astype(np.float64)
        assert np.abs(full - mirror).max() <= arr_2d.eb_abs * (1 + 1e-6) + 1e-7

    def test_broadcast_scalar_write(self, arr_2d):
        arr_2d[:, :] = 0.0
        assert np.allclose(arr_2d.to_numpy(), 0.0, atol=arr_2d.eb_abs)

    def test_write_then_reread_before_flush_is_exact(self, arr_2d):
        # pre-flush, written values are stored exactly (quantization only
        # happens at flush)
        arr_2d[4, 4] = 1.2345
        assert float(arr_2d[4, 4]) == np.float32(1.2345)

    def test_shape_mismatch_rejected(self, arr_2d):
        with pytest.raises((StoreError, ValueError)):
            arr_2d[0:4, 0:4] = np.zeros((3, 3), dtype=np.float32)

    def test_nonfinite_write_rejected(self, arr_2d):
        with pytest.raises(StoreError, match="finite"):
            arr_2d[0, 0] = np.nan

    def test_repeated_flush_is_stable(self, arr_2d):
        arr_2d[5:9, :] = 2.0
        a = arr_2d.flush()
        b = arr_2d.flush()  # no dirty blocks: same buffer back
        assert a is b

    def test_flush_after_rewrite_is_idempotent_on_lattice(self, arr_2d):
        # writing back values the array itself returned re-encodes them
        # bit-identically (quantization is idempotent on lattice values)
        before = arr_2d.flush()
        vals = np.asarray(arr_2d[12, :])
        arr_2d[12, :] = vals
        after = arr_2d.flush()
        assert after.tobytes() == before.tobytes()

    def test_stream_property_flushes(self, arr_2d):
        arr_2d[0, 0] = 9.0
        buf = arr_2d.stream
        assert arr_2d.dirty_blocks == 0
        assert verify(buf).ok


class TestTileBackedArrays:
    @pytest.fixture
    def tile_arr(self, rng):
        data = np.cumsum(np.cumsum(rng.normal(size=(40, 56)), 0), 1).astype(np.float32)
        buf = compress(data, rel=1e-3, predictor_ndim=2, block=64)
        return data, CompressedArray.from_stream(buf)

    def test_reads_match_full_decode(self, tile_arr):
        data, arr = tile_arr
        assert not arr.writable
        full = decompress(compress(data, rel=1e-3, predictor_ndim=2, block=64))
        assert np.asarray(arr[5:20, 8:33]).tobytes() == full[5:20, 8:33].tobytes()
        assert np.asarray(arr[::3, -1]).tobytes() == full[::3, -1].tobytes()

    def test_writes_refused(self, tile_arr):
        _, arr = tile_arr
        with pytest.raises(StoreError, match="1-D predictor"):
            arr[0, 0] = 1.0


class TestAccounting:
    def test_byte_properties(self, field_2d, arr_2d):
        assert arr_2d.nbytes == field_2d.nbytes
        assert 0 < arr_2d.compressed_nbytes < field_2d.nbytes
        assert arr_2d.resident_nbytes >= arr_2d.compressed_nbytes
        arr_2d[0:3, :] = 1.0
        assert arr_2d.dirty_nbytes > 0
        arr_2d.flush()
        assert arr_2d.dirty_nbytes == 0

    def test_repr_mentions_shape_and_dirt(self, arr_2d):
        arr_2d[0, 0] = 1.0
        r = repr(arr_2d)
        assert "shape=(37, 53)" in r and "dirty=" in r

    def test_from_stream_roundtrip(self, field_2d, arr_2d):
        again = CompressedArray.from_stream(arr_2d.flush())
        assert again.shape == arr_2d.shape
        assert again.to_numpy().tobytes() == arr_2d.to_numpy().tobytes()
