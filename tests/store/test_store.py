"""CompressedStore: budget-driven spill, fault-in, checkpoint/restore."""

import numpy as np
import pytest

from repro.core.archive import DatasetArchive
from repro.serve.stats import MetricsRegistry
from repro.store import CompressedStore, StoreError
from repro.store.spill import SpillDir, read_checkpoint, write_checkpoint


def _field(rng, n=20_000):
    return np.cumsum(rng.normal(size=n)).astype(np.float32)


@pytest.fixture
def store(tmp_path):
    return CompressedStore(budget_bytes=1 << 20, spill_dir=str(tmp_path / "spill"))


class TestBasics:
    def test_put_get_roundtrip(self, store, rng):
        data = _field(rng)
        store.put("x", data, rel=1e-3)
        arr = store["x"]
        assert arr.shape == data.shape
        assert np.abs(arr[:100] - data[:100]).max() <= arr.eb_abs * (1 + 1e-6)

    def test_setitem_ndarray_uses_default_bound(self, store, rng):
        store["y"] = _field(rng)
        assert "y" in store and len(store) == 1

    def test_missing_name_raises_keyerror(self, store):
        with pytest.raises(KeyError, match="no array"):
            store["nope"]
        assert store.get("nope") is None

    def test_drop(self, store, rng):
        store["x"] = _field(rng)
        assert store.drop("x") is True
        assert "x" not in store
        assert store.drop("x") is False

    def test_adopt_existing_stream(self, store, rng):
        from repro.core import compress

        data = _field(rng)
        buf = compress(data, rel=1e-3)
        arr = store.adopt("z", buf)
        assert arr.compressed_nbytes == buf.size

    def test_negative_budget_rejected(self):
        with pytest.raises(StoreError):
            CompressedStore(budget_bytes=-1)


class TestSpill:
    def test_over_budget_spills_coldest(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=64 << 10, spill_dir=str(tmp_path))
        for i in range(8):
            store.put(f"a{i}", _field(rng), rel=1e-3)
        assert store.spills > 0
        assert len(store.spilled_names) > 0
        assert store.resident_bytes <= store.budget_bytes or len(store._resident) == 1
        # everything still addressable
        assert len(store) == 8

    def test_fault_in_is_byte_exact(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=64 << 10, spill_dir=str(tmp_path))
        data = _field(rng)
        before = store.put("cold", data, rel=1e-3).flush().tobytes()
        # push "cold" out with hotter arrays
        for i in range(6):
            store.put(f"hot{i}", _field(rng), rel=1e-3)
        assert "cold" in store.spilled_names
        faults = store.faults
        arr = store["cold"]
        assert store.faults == faults + 1
        assert arr.flush().tobytes() == before

    def test_spill_flushes_dirty_blocks(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=64 << 10, spill_dir=str(tmp_path))
        data = _field(rng)
        arr = store.put("w", data, rel=1e-3)
        arr[0:100] = 5.0
        store.spill_all()
        assert "w" in store.spilled_names
        back = store["w"]
        assert np.allclose(back[0:100], 5.0, atol=back.eb_abs)

    def test_spill_file_is_a_plain_archive(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=1 << 20, spill_dir=str(tmp_path))
        store.put("field", _field(rng), rel=1e-3)
        store.spill_all()
        sd = SpillDir(str(tmp_path))
        assert sd.names() == ["field"]
        raw = np.fromfile(sd.path_for("field"), dtype=np.uint8)
        arc = DatasetArchive(raw)
        assert arc.names == ["field"]
        assert arc.verify_all() == {"field": True}
        arc.extract("field")  # decodes clean

    def test_protected_array_never_spilled(self, tmp_path, rng):
        # a single array larger than the budget stays resident
        store = CompressedStore(budget_bytes=1, spill_dir=str(tmp_path))
        store.put("big", _field(rng), rel=1e-3)
        assert store.spilled_names == []
        assert store["big"] is not None

    def test_lru_order_spills_coldest_first(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=10 << 20, spill_dir=str(tmp_path))
        for i in range(4):
            store.put(f"a{i}", _field(rng), rel=1e-3)
        store["a0"]  # touch: a1 becomes coldest
        store.budget_bytes = 0
        store["a0"]  # re-enforce with a0 protected
        assert "a0" not in store.spilled_names
        assert set(store.spilled_names) >= {"a1", "a2"}


class TestCheckpoint:
    def test_checkpoint_restore_roundtrip(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=64 << 10, spill_dir=str(tmp_path / "s"))
        fields = {f"f{i}": _field(rng) for i in range(5)}
        for name, data in fields.items():
            store.put(name, data, rel=1e-3)
        streams_before = {n: store[n].flush().tobytes() for n in sorted(fields)}
        ckpt = tmp_path / "state.csz2arc"
        nbytes = store.checkpoint(str(ckpt))
        assert nbytes == ckpt.stat().st_size

        fresh = CompressedStore(budget_bytes=64 << 10, spill_dir=str(tmp_path / "s2"))
        restored = fresh.restore(str(ckpt))
        assert restored == sorted(fields)
        for n in fields:
            assert fresh[n].flush().tobytes() == streams_before[n]

    def test_checkpoint_includes_spilled_arrays(self, tmp_path, rng):
        store = CompressedStore(budget_bytes=32 << 10, spill_dir=str(tmp_path / "s"))
        for i in range(6):
            store.put(f"f{i}", _field(rng), rel=1e-3)
        assert store.spilled_names  # some live on disk
        ckpt = tmp_path / "all.csz2arc"
        store.checkpoint(str(ckpt))
        names = read_checkpoint(str(ckpt)).keys()
        assert sorted(names) == [f"f{i}" for i in range(6)]

    def test_empty_store_checkpoint_rejected(self, store, tmp_path):
        with pytest.raises(StoreError, match="empty"):
            store.checkpoint(str(tmp_path / "x.csz2arc"))

    def test_corrupt_checkpoint_detected(self, tmp_path, rng):
        from repro.core import compress
        from repro.core.errors import IntegrityError

        path = str(tmp_path / "c.csz2arc")
        write_checkpoint(path, {"f": compress(_field(rng), rel=1e-3)})
        raw = bytearray(open(path, "rb").read())
        raw[-10] ^= 0xFF  # flip a bit inside the stream body
        open(path, "wb").write(bytes(raw))
        with pytest.raises(IntegrityError, match="CRC"):
            read_checkpoint(path)


class TestObservability:
    def test_gauges_and_counters_published(self, tmp_path, rng):
        reg = MetricsRegistry()
        store = CompressedStore(
            budget_bytes=64 << 10, spill_dir=str(tmp_path), stats=reg
        )
        for i in range(6):
            store.put(f"a{i}", _field(rng), rel=1e-3)
        store["a0"]
        assert reg.counter("store.spills").value == store.spills > 0
        assert reg.counter("store.faults").value == store.faults
        assert reg.gauge("store.arrays_resident").value == len(store._resident)
        assert reg.gauge("store.arrays_spilled").value == len(store.spilled_names)
        assert reg.gauge("store.budget_bytes").value == 64 << 10

    def test_prometheus_export_includes_store_metrics(self, tmp_path, rng):
        from repro.obs import prometheus_text

        reg = MetricsRegistry()
        store = CompressedStore(
            budget_bytes=64 << 10, spill_dir=str(tmp_path), stats=reg
        )
        for i in range(8):
            store.put(f"a{i}", _field(rng), rel=1e-3)
        assert store.spills > 0
        text = prometheus_text(reg)
        assert "store_resident_bytes" in text
        assert "store_spills" in text

    def test_spans_recorded(self, tmp_path, rng):
        from repro.obs import trace as obs_trace

        with obs_trace.tracing() as tracer:
            store = CompressedStore(budget_bytes=16 << 10, spill_dir=str(tmp_path))
            arr = store.put("a", _field(rng), rel=1e-3)
            arr[0:50]
            arr[0:50] = 1.0
            arr.flush()
            store.put("b", _field(rng), rel=1e-3)  # forces a spill of "a"
            store["a"]  # fault-in
        for name in ("store.read", "store.write", "store.flush",
                     "store.spill", "store.fault_in"):
            assert tracer.find(name), f"no {name} span recorded"

    def test_stats_snapshot_keys(self, store, rng):
        store.put("x", _field(rng), rel=1e-3)
        snap = store.stats_snapshot()
        for key in ("arrays_resident", "arrays_spilled", "resident_bytes",
                    "spills", "faults", "budget_bytes"):
            assert key in snap


class TestWorkloadMirror:
    def test_interleaved_ops_match_mirror(self, tmp_path, rng):
        """A miniature of the qa store oracle across spill boundaries."""
        store = CompressedStore(budget_bytes=48 << 10, spill_dir=str(tmp_path))
        fields = {}
        for i in range(5):
            data = _field(rng, 10_000)
            fields[f"f{i}"] = data.astype(np.float64)
            store.put(f"f{i}", data, abs=1e-2)
        for _ in range(40):
            name = f"f{int(rng.integers(0, 5))}"
            lo = int(rng.integers(0, 9_000))
            hi = lo + int(rng.integers(1, 1_000))
            if rng.random() < 0.5:
                got = store[name][lo:hi]
                # eb plus half a float32 ULP of the reconstruction (values
                # reach ~100, where spacing is 7.6e-6) -- same slack the
                # qa oracles grant the codec itself
                assert np.abs(got - fields[name][lo:hi]).max() <= 1e-2 * (1 + 1e-6) + 4e-6
            else:
                v = float(rng.normal())
                store[name][lo:hi] = v
                fields[name][lo:hi] = np.float32(v)
        store.flush_all()
        for name, mirror in fields.items():
            got = store[name].to_numpy().astype(np.float64)
            assert np.abs(got - mirror).max() <= 1e-2 * (1 + 1e-6) + 4e-6
