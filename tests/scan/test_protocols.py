"""Protocol-level tests: the scan kernels on the virtual GPU.

The decisive property: under *any* random interleaving of thread blocks,
both chained scan and decoupled lookback compute exact exclusive/inclusive
prefixes.  These are the tests one cannot write against real CUDA without a
race-hunting harness.
"""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.gpusim.vm import DeadlockError, GlobalMemory, VirtualGPU
from repro.scan import chained, lookback
from repro.scan.sequential import exclusive_scan, inclusive_scan


def run_protocol(module, sums, resident, seed, local_work=3):
    mem = module.setup_memory(sums)
    gpu = VirtualGPU(resident=resident, seed=seed)
    kernel = (
        chained.chained_scan_kernel if module is chained else lookback.lookback_scan_kernel
    )
    report = gpu.launch(kernel, grid=len(sums), mem=mem, args=(local_work,))
    return mem, report


@pytest.mark.parametrize("module", [chained, lookback])
class TestBothProtocols:
    def test_small_example(self, module):
        sums = np.array([5, 0, 3, 17, 2])
        mem, _ = run_protocol(module, sums, resident=2, seed=0)
        assert np.array_equal(mem["exclusive"], exclusive_scan(sums))
        assert np.array_equal(mem["inclusive"], inclusive_scan(sums))

    @pytest.mark.parametrize("seed", range(25))
    def test_many_random_schedules(self, module, seed):
        rng = seeded_rng(seed)
        n = int(rng.integers(1, 40))
        sums = rng.integers(0, 1000, size=n)
        resident = int(rng.integers(1, n + 1))
        mem, _ = run_protocol(module, sums, resident=resident, seed=seed)
        assert np.array_equal(mem["exclusive"], exclusive_scan(sums))

    def test_single_block(self, module):
        mem, _ = run_protocol(module, np.array([42]), resident=1, seed=1)
        assert mem["exclusive"][0] == 0
        assert mem["inclusive"][0] == 42

    def test_resident_one_still_progresses(self, module):
        # With one resident block the scheduler degenerates to sequential
        # execution in launch order -- both protocols must still terminate.
        sums = np.arange(10)
        mem, _ = run_protocol(module, sums, resident=1, seed=2)
        assert np.array_equal(mem["exclusive"], exclusive_scan(sums))

    def test_heterogeneous_local_work(self, module):
        sums = np.arange(16)
        mem, _ = run_protocol(module, sums, resident=4, seed=3, local_work=11)
        assert np.array_equal(mem["exclusive"], exclusive_scan(sums))


class TestLookbackSpecifics:
    def test_flags_end_as_prefix(self):
        sums = np.arange(12)
        mem, _ = run_protocol(lookback, sums, resident=3, seed=4)
        assert np.all(mem["flag"] == lookback.FLAG_PREFIX)

    def test_lookback_faster_than_chained_in_vm_steps(self):
        # With a full-residency schedule, lookback blocks stop spinning as
        # soon as predecessors publish aggregates, so the total scheduler
        # steps are consistently below the chained protocol's.
        sums = np.arange(64)
        chained_steps, lookback_steps = [], []
        for seed in range(10):
            _, rep_c = run_protocol(chained, sums, resident=64, seed=seed, local_work=8)
            _, rep_l = run_protocol(lookback, sums, resident=64, seed=seed, local_work=8)
            chained_steps.append(rep_c.total_steps)
            lookback_steps.append(rep_l.total_steps)
        assert np.mean(lookback_steps) < np.mean(chained_steps)


class TestVirtualGPU:
    def test_admission_in_launch_order(self):
        order = []

        def kernel(block_id, mem):
            order.append(block_id)
            yield

        gpu = VirtualGPU(resident=1, seed=0)
        gpu.launch(kernel, grid=5, mem=GlobalMemory())
        assert order == [0, 1, 2, 3, 4]

    def test_deadlock_detection(self):
        def spinner(block_id, mem):
            while True:
                yield

        gpu = VirtualGPU(resident=2, seed=0)
        with pytest.raises(DeadlockError):
            gpu.launch(spinner, grid=2, mem=GlobalMemory(), spin_limit=500, max_steps=10_000)

    def test_atomics(self):
        mem = GlobalMemory()
        mem.alloc("ctr", 1)

        def kernel(block_id, mem):
            yield
            mem.atomic_add("ctr", 0, 1)

        VirtualGPU(resident=4, seed=0).launch(kernel, grid=100, mem=mem)
        assert mem["ctr"][0] == 100

    def test_atomic_cas_semantics(self):
        mem = GlobalMemory()
        mem.alloc("x", 1, fill=5)
        assert mem.atomic_cas("x", 0, 5, 9) == 5
        assert mem["x"][0] == 9
        assert mem.atomic_cas("x", 0, 5, 11) == 9
        assert mem["x"][0] == 9

    def test_atomic_max(self):
        mem = GlobalMemory()
        mem.alloc("m", 1, fill=3)
        assert mem.atomic_max("m", 0, 10) == 3
        assert mem["m"][0] == 10
        mem.atomic_max("m", 0, 7)
        assert mem["m"][0] == 10

    def test_invalid_resident_rejected(self):
        with pytest.raises(ValueError):
            VirtualGPU(resident=0)

    def test_reports_block_steps(self):
        def kernel(block_id, mem):
            for _ in range(block_id + 1):
                yield

        report = VirtualGPU(resident=3, seed=1).launch(kernel, grid=4, mem=GlobalMemory())
        # Block b yields b+1 times, so executes b+2 scheduling steps.
        assert [s.steps for s in report.block_stats] == [2, 3, 4, 5]
