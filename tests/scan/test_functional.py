"""Unit tests for the functional scan layer."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.scan import (
    chained_global_scan,
    exclusive_scan,
    inclusive_scan,
    local_reduce,
    local_scan,
    lookback_global_scan,
    reduce_then_scan,
    tile_values,
    total,
)


class TestSequential:
    def test_exclusive_basic(self):
        assert exclusive_scan(np.array([3, 1, 4, 1, 5])).tolist() == [0, 3, 4, 8, 9]

    def test_inclusive_basic(self):
        assert inclusive_scan(np.array([3, 1, 4, 1, 5])).tolist() == [3, 4, 8, 9, 14]

    def test_empty(self):
        assert exclusive_scan(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        assert exclusive_scan(np.array([7])).tolist() == [0]

    def test_total(self):
        assert total(np.array([1, 2, 3])) == 6

    def test_exclusive_shifts_inclusive(self):
        rng = seeded_rng(0)
        v = rng.integers(0, 100, size=1000)
        assert np.array_equal(exclusive_scan(v)[1:], inclusive_scan(v)[:-1])

    def test_large_values_use_int64(self):
        v = np.full(1000, 2**40, dtype=np.int64)
        out = exclusive_scan(v)
        assert out[-1] == 999 * 2**40


class TestReduceThenScan:
    def test_matches_reference(self):
        rng = seeded_rng(1)
        v = rng.integers(0, 200, size=10_000)
        assert np.array_equal(reduce_then_scan(v), exclusive_scan(v))

    @pytest.mark.parametrize("n", [1, 5, 127, 128, 129, 1000])
    def test_awkward_sizes(self, n):
        rng = seeded_rng(n)
        v = rng.integers(0, 50, size=n)
        assert np.array_equal(reduce_then_scan(v), exclusive_scan(v))

    def test_tiling_pads_with_zeros(self):
        tiles, ntiles = tile_values(np.array([1, 2, 3]), tile=4)
        assert ntiles == 1
        assert tiles.tolist() == [[1, 2, 3, 0]]

    def test_local_steps_compose(self):
        rng = seeded_rng(2)
        v = rng.integers(0, 9, size=512)
        tiles, _ = tile_values(v, tile=64)
        sums = local_reduce(tiles)
        offsets = exclusive_scan(sums)
        out = local_scan(tiles, offsets).reshape(-1)[: v.size]
        assert np.array_equal(out, exclusive_scan(v))

    def test_pluggable_global_policies_agree(self):
        rng = seeded_rng(3)
        v = rng.integers(0, 1000, size=4096)
        a = reduce_then_scan(v, global_scan=chained_global_scan)
        b = reduce_then_scan(v, global_scan=lookback_global_scan)
        assert np.array_equal(a, b)

    def test_compression_use_case(self):
        # The exact quantity step 3 of the pipeline needs: per-block byte
        # starts within the unified compressed array.
        sizes = np.array([5, 0, 3, 17, 0, 1])
        starts = reduce_then_scan(sizes, tile=4)
        assert starts.tolist() == [0, 5, 5, 8, 25, 25]
