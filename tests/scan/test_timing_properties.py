"""Property-based tests for the discrete-event scan timing models.

These pin down the *structural* guarantees the performance model relies
on: lookback never loses to chained scan, timing is monotone in work and
block count, and the models agree with basic physics (total time at least
the critical path).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scan.chained import chained_timeline
from repro.scan.lookback import lookback_schedule, lookback_timeline

work_arrays = st.lists(
    st.floats(min_value=1e-8, max_value=1e-4, allow_nan=False), min_size=1, max_size=80
).map(lambda xs: np.array(xs))

residents = st.integers(1, 64)
t_flag = st.floats(min_value=1e-9, max_value=1e-6, allow_nan=False)


@given(work_arrays, t_flag, residents)
@settings(max_examples=150, deadline=None)
def test_lookback_at_most_marginally_slower_than_chained(work, t, resident):
    # Lookback pays up to two flag round trips per block (publish aggregate,
    # publish prefix) vs the chain's one, so in a fully serialized regime it
    # can lose by that constant; it may never lose by more.
    look = lookback_timeline(work, t, resident)
    chain = chained_timeline(work, t, resident)
    assert look.scan_finish_s <= chain.scan_finish_s + 2 * t * work.size + 1e-12


@given(work_arrays, t_flag, st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_lookback_wins_with_full_residency(work, t, scale):
    # In the parallel regime (all blocks resident, enough work to hide the
    # chain) the decoupling is a strict win whenever the chain is longer
    # than a couple of flag trips.
    n = work.size
    if n < 4:
        return
    look = lookback_timeline(work, t, resident=n)
    chain = chained_timeline(work, t, resident=n)
    assert look.scan_finish_s <= chain.scan_finish_s + 2 * t


@given(work_arrays, t_flag, residents)
@settings(max_examples=100, deadline=None)
def test_scan_at_least_critical_path(work, t, resident):
    # No schedule can beat the single longest local work item, nor the
    # serial fraction implied by limited residency.
    for tl in (lookback_timeline(work, t, resident), chained_timeline(work, t, resident)):
        assert tl.scan_finish_s >= float(work.max()) - 1e-15
        assert tl.scan_finish_s >= float(work.sum()) / resident - 1e-12


@given(work_arrays, t_flag, residents)
@settings(max_examples=100, deadline=None)
def test_sync_latency_nonnegative_and_finite(work, t, resident):
    for tl in (lookback_timeline(work, t, resident), chained_timeline(work, t, resident)):
        assert tl.sync_latency_s >= 0.0
        assert np.isfinite(tl.scan_finish_s)


@given(work_arrays, t_flag, residents)
@settings(max_examples=60, deadline=None)
def test_more_work_never_faster(work, t, resident):
    slower = work * 2.0
    a = lookback_timeline(work, t, resident).scan_finish_s
    b = lookback_timeline(slower, t, resident).scan_finish_s
    assert b >= a - 1e-15


@given(work_arrays, t_flag, st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_more_residency_never_slower(work, t, resident):
    a = lookback_timeline(work, t, resident).scan_finish_s
    b = lookback_timeline(work, t, resident * 4).scan_finish_s
    assert b <= a * (1 + 1e-9)


@given(work_arrays, t_flag, residents)
@settings(max_examples=60, deadline=None)
def test_schedule_internally_consistent(work, t, resident):
    start, agg, prefix, depths = lookback_schedule(work, t, resident)
    # Every block: admitted -> local work done -> prefix known, in order.
    assert np.all(agg >= start - 1e-15)
    assert np.all(prefix >= agg - 1e-15)
    # Block 0 publishes its prefix with its aggregate.
    assert prefix[0] == agg[0]
    # Each predecessor is inspected at most twice (once finding it Waiting,
    # once after its aggregate appears).
    assert np.all(depths <= 2 * np.arange(work.size))


@given(st.integers(1, 2000), t_flag)
@settings(max_examples=40, deadline=None)
def test_chained_chain_grows_linearly(n, t):
    # With zero local work the chained scan is exactly the serial chain.
    tl = chained_timeline(np.zeros(n), t, resident=max(1, n))
    assert abs(tl.scan_finish_s - (n - 1) * t) <= 1e-9 * max(1, n) * t
