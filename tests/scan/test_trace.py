"""Unit tests for Fig. 13 state traces of the lookback scan."""

import numpy as np
import pytest

from repro.scan.trace import (
    FINISHED,
    IDLE,
    LOOKING_BACK,
    WAITING,
    trace_lookback,
)


@pytest.fixture
def trace(rng):
    work = rng.uniform(1e-6, 5e-6, size=24)
    return trace_lookback(work, t_poll_s=5e-7, resident=6)


class TestStates:
    def test_states_progress_monotonically(self, trace):
        # For every block: Idle -> Waiting -> Looking Back -> Finished.
        order = {IDLE: 0, WAITING: 1, LOOKING_BACK: 2, FINISHED: 3}
        times = np.linspace(0, float(trace.prefix_done.max()) * 1.1, 60)
        for b in range(trace.nblocks):
            seq = [order[trace.state_at(float(t), b)] for t in times]
            assert seq == sorted(seq), f"block {b} regressed"

    def test_everything_finishes(self, trace):
        end = float(trace.prefix_done.max()) + 1e-9
        assert all(s == FINISHED for s in trace.snapshot(end))

    def test_nothing_started_at_zero_minus(self, trace):
        snap = trace.snapshot(-1e-12)
        assert all(s == IDLE for s in snap)

    def test_fig13_moment_has_coexisting_states(self, rng):
        # With heterogeneous work and limited residency, the captured moment
        # shows the paper's three states simultaneously.
        work = rng.uniform(1e-6, 2e-5, size=32)
        tr = trace_lookback(work, t_poll_s=1e-6, resident=8)
        counts = tr.counts_at(tr.interesting_moment())
        present = [s for s in (WAITING, LOOKING_BACK, FINISHED) if counts[s] > 0]
        assert len(present) >= 2  # at least two phases coexist
        assert sum(counts.values()) == 32

    def test_block_zero_never_looks_back(self, trace):
        # TB0's prefix equals its aggregate: it transitions Waiting->Finished.
        assert trace.prefix_done[0] == trace.agg_done[0]

    def test_consistency_with_timeline_summary(self, rng):
        from repro.scan.lookback import lookback_timeline

        work = rng.uniform(1e-6, 5e-6, size=40)
        tr = trace_lookback(work, 5e-7, resident=10)
        tl = lookback_timeline(work, 5e-7, resident=10)
        assert float(tr.prefix_done.max()) == pytest.approx(tl.scan_finish_s)
        assert float(tr.agg_done.max()) == pytest.approx(tl.local_finish_s)


class TestRendering:
    def test_snapshot_rendering(self, trace):
        text = trace.render_snapshot(trace.interesting_moment())
        assert "TB0..TB23" in text
        assert "Finished" in text and "Waiting" in text

    def test_timeline_rendering(self, trace):
        text = trace.render_timeline(samples=6)
        assert len(text.splitlines()) == 7
        assert "Looking Back" in text

    def test_snapshot_marks_length(self, trace):
        text = trace.render_snapshot(0.0)
        row = text.splitlines()[1].strip().strip("[]")
        assert len(row) == trace.nblocks
