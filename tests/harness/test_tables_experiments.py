"""Unit tests for table renderers and light experiment entry points.

(The heavyweight experiments are exercised by benchmarks/; here we cover
the renderers and the fast experiments so plain `pytest tests/` still
touches the harness code paths.)
"""


from repro.harness import experiments as E
from repro.harness import tables


class TestRenderers:
    def test_bar_chart_basic(self):
        text = tables.bar_chart("t", {"a": 10.0, "b": 5.0})
        assert "t" in text and "a" in text
        # Bars scale with the values.
        a_line = next(l for l in text.splitlines() if "  a" in l)
        b_line = next(l for l in text.splitlines() if "  b" in l)
        assert a_line.count("#") > b_line.count("#")

    def test_bar_chart_handles_nan(self):
        text = tables.bar_chart("t", {"ok": 1.0, "broken": float("nan")})
        assert "N.A." in text

    def test_grouped_bars(self):
        text = tables.grouped_bars("G", {"g1": {"x": 1.0}, "g2": {"x": 2.0}})
        assert text.count("-- g") == 2

    def test_cell_table_alignment(self):
        text = tables.cell_table("T", ["r1"], ["c1", "c2"], {("r1", "c1"): "v"})
        lines = text.splitlines()
        assert "c1" in lines[1] and "c2" in lines[1]
        assert "v" in lines[2]

    def test_feature_matrix_marks(self):
        text = tables.feature_matrix("F", {"x": {"a": True, "b": False, "c": None}}, ["a", "b", "c"])
        row = text.splitlines()[-1]
        assert "yes" in row and "no" in row and "-" in row

    def test_series_table_formats_floats_and_nan(self):
        text = tables.series_table("S", [("r", 1.234, float("nan"))], ["k", "v", "w"])
        assert "1.23" in text
        assert "N.A." in text


class TestLightExperiments:
    def test_table1(self):
        r = E.table1_features()
        assert "CUSZP2" in r.text
        assert len(r.data["features"]) == 7

    def test_fig10(self):
        r = E.fig10_vectorization(256)
        assert r.data["scalar"] == 4 * r.data["vector"]

    def test_fig02_structure(self):
        r = E.fig02_hybrid_gap()
        assert set(r.data) == {"cusz", "cuszx", "mgard"}
        for fam, vals in r.data.items():
            assert vals["kernel_comp"] > vals["e2e_comp"]

    def test_fig17_small_subset(self):
        r = E.fig17_lookback(datasets=("Miranda",))
        d = r.data["per_dataset"]["Miranda"]
        assert d["lookback"] > d["chained"]

    def test_fig20_subset_is_tb_level(self):
        r = E.fig20_random_access()
        assert r.data["series"]["AVERAGE"] > 1000

    def test_fig21_device_ordering(self):
        r = E.fig21_other_gpus(rels=(1e-3,))
        assert (
            r.data["A100-40GB"]["cuszp2-o"][0]
            > r.data["RTX-3090"]["cuszp2-o"][0]
            > r.data["RTX-3080"]["cuszp2-o"][0]
        )

    def test_experiment_result_str(self):
        r = E.table1_features()
        assert str(r) == r.text


class TestMatchedRatioSearch:
    def test_bisection_hits_target(self):
        data = E._rtm_preview("P3000", shape=(16, 16, 64))
        recon, cr = E._cuszp2_at_ratio(data, 6.0)
        assert recon.shape == data.shape
        assert abs(cr - 6.0) / 6.0 < 0.25
