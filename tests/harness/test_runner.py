"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.gpusim import A100_40GB, Artifacts
from repro.harness import (
    dataset_runs,
    field_data_cached,
    paper_field_bytes,
    run_field,
    scale_artifacts,
    simulate,
)
from repro.harness.runner import cuzfp_stream_size, family_of


class TestFieldCache:
    def test_cached_identity(self):
        a = field_data_cached("Miranda", "density")
        b = field_data_cached("Miranda", "density")
        assert a is b  # lru_cache returns the same array object

    def test_dtype_follows_dataset(self):
        assert field_data_cached("S3D", "T").dtype == np.float64
        assert field_data_cached("RTM", "P3000").dtype == np.float32


class TestRunField:
    def test_cuszp2_artifacts_consistent(self):
        run = run_field("Miranda", "density", "cuszp2-o", 1e-3)
        assert run.ok
        assert run.ratio > 1
        art = run.artifacts
        assert art.input_bytes == pytest.approx(art.ratio * art.compressed_bytes)
        assert art.mode == "outlier"

    def test_cuszp_matches_cuszp2_plain(self):
        a = run_field("Miranda", "density", "cuszp", 1e-3)
        b = run_field("Miranda", "density", "cuszp2-p", 1e-3)
        assert a.ratio == b.ratio  # byte-identical streams

    def test_fzgpu_bug_reproduced(self):
        run = run_field("HACC", "xx", "fzgpu", 1e-3)
        assert not run.ok
        assert "N.A." in run.failed or "Lorenzo" in run.failed
        assert np.isnan(run.ratio)

    def test_fzgpu_ok_elsewhere(self):
        run = run_field("RTM", "P3000", "fzgpu", 1e-3)
        assert run.ok

    def test_cuzfp_fixed_rate_ratio(self):
        run = run_field("Miranda", "density", "cuzfp-8", 8)
        # rate 8 on f32: ratio near 4 (container overhead shifts it a bit).
        assert 3.0 < run.ratio < 4.6

    def test_unknown_compressor(self):
        with pytest.raises(ValueError):
            run_field("Miranda", "density", "zstd", 1e-3)

    def test_dataset_runs_covers_all_fields(self):
        runs = dataset_runs("RTM", "cuszp2-p", 1e-2)
        assert set(runs) == {"P1000", "P2000", "P3000"}


class TestCuzfpStreamSize:
    def test_matches_real_encoder(self):
        from repro.baselines import CuZFP

        field = field_data_cached("Miranda", "density").reshape(-1)[: 16 * 16 * 64].reshape(16, 16, 64)
        real = CuZFP(8).compress(field).size
        assert cuzfp_stream_size(field.shape, 8) == real


class TestScaling:
    def test_scale_preserves_ratios(self):
        run = run_field("Miranda", "density", "cuszp2-o", 1e-3)
        big = scale_artifacts(run.artifacts, 4e9)
        assert big.input_bytes == pytest.approx(4e9, rel=1e-6)
        assert big.ratio == pytest.approx(run.artifacts.ratio, rel=1e-3)
        assert big.zero_block_fraction == run.artifacts.zero_block_fraction

    def test_paper_field_bytes(self):
        # HACC: 23.99 GB over 6 fields.
        assert paper_field_bytes("HACC") == pytest.approx(23.99e9 / 6)

    def test_scale_handles_none_fields(self):
        art = Artifacts(1000, 4, 500)  # baseline-style, no payload split
        big = scale_artifacts(art, 4e6)
        assert big.payload_bytes is None
        assert big.compressed_bytes == 500 * 1000


class TestSimulate:
    def test_directions_differ(self):
        run = run_field("Miranda", "density", "cuszp2-o", 1e-3)
        c = simulate(run, A100_40GB, "compress")
        d = simulate(run, A100_40GB, "decompress")
        assert d > c > 50

    def test_failed_run_is_nan(self):
        run = run_field("HACC", "xx", "fzgpu", 1e-3)
        assert np.isnan(simulate(run, A100_40GB, "compress"))

    def test_family_mapping(self):
        assert family_of("cuszp2-o") == "cuszp2"
        assert family_of("cuzfp-16") == "cuzfp"
        assert family_of("fzgpu") == "fzgpu"
