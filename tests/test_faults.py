"""The fault-injection subsystem: determinism, contracts, and the campaign.

The campaign itself (``-m faults``) is the executable form of the v2
integrity guarantee: every injected fault is detected or provably
harmless, and recover mode never mis-reconstructs an intact group.
"""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro import compress
from repro.core.errors import InvalidInputError
from repro.faults import (
    INJECTORS,
    BitFlip,
    BurstErasure,
    HeaderCorruption,
    Truncation,
    make_injector,
    run_faultcheck,
)


@pytest.fixture(scope="module")
def stream():
    rng = seeded_rng(0)
    data = np.cumsum(rng.normal(size=4000)).astype(np.float32)
    return compress(data, rel=1e-3, mode="outlier", group_blocks=16)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(INJECTORS))
    def test_same_seed_same_corruption(self, name, stream):
        a = make_injector(name, seed=77).apply(stream)
        b = make_injector(name, seed=77).apply(stream)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(INJECTORS))
    def test_nth_apply_agrees(self, name, stream):
        i1, i2 = make_injector(name, seed=5), make_injector(name, seed=5)
        for _ in range(4):
            assert np.array_equal(i1.apply(stream), i2.apply(stream))
        assert i1.events == i2.events

    def test_different_seeds_differ(self, stream):
        a = BitFlip(seed=1).apply(stream)
        b = BitFlip(seed=2).apply(stream)
        assert not np.array_equal(a, b)


class TestContracts:
    def test_input_never_mutated(self, stream):
        snapshot = stream.copy()
        for name in INJECTORS:
            make_injector(name, seed=3).apply(stream)
        assert np.array_equal(stream, snapshot)

    def test_bitflip_changes_exactly_one_bit(self, stream):
        corrupt = BitFlip(seed=9, nflips=1).apply(stream)
        xor = np.bitwise_xor(stream, corrupt)
        assert sum(bin(int(b)).count("1") for b in xor[xor != 0]) == 1

    def test_truncation_shortens(self, stream):
        out = Truncation(seed=4).apply(stream)
        assert out.size < stream.size

    def test_burst_is_contiguous(self, stream):
        inj = BurstErasure(seed=8, burst=32, value=0)
        corrupt = inj.apply(stream)
        (start, length) = inj.events[0]["start"], inj.events[0]["length"]
        diff = np.nonzero(stream != corrupt)[0]
        assert diff.size > 0
        assert diff.min() >= start and diff.max() < start + length

    def test_header_corruption_stays_in_prefix(self, stream):
        inj = HeaderCorruption(seed=6, nbytes=4)
        corrupt = inj.apply(stream)
        diff = np.nonzero(stream != corrupt)[0]
        assert diff.max() < 52 + 64

    def test_events_record_each_apply(self, stream):
        inj = BitFlip(seed=0)
        for _ in range(3):
            inj.apply(stream)
        assert len(inj.events) == 3

    def test_unknown_injector_rejected(self):
        with pytest.raises(InvalidInputError):
            make_injector("gamma-ray")


@pytest.mark.faults
class TestCampaign:
    def test_quick_campaign_detects_everything(self):
        result = run_faultcheck(quick=True, seed=0)
        assert result.ok, result.summary()
        assert not result.failures
        assert sum(result.counts.values()) == len(result.trials)
        assert "FAULTCHECK PASSED" in result.summary()

    def test_campaign_is_reproducible(self):
        a = run_faultcheck(quick=True, trials=2, seed=1, injectors=["bitflip"])
        b = run_faultcheck(quick=True, trials=2, seed=1, injectors=["bitflip"])
        assert a.trials == b.trials


class TestCLI:
    def test_faultcheck_quick_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["faultcheck", "--quick", "--trials", "2", "--injector", "bitflip"]) == 0
        assert "FAULTCHECK PASSED" in capsys.readouterr().out
