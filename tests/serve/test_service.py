"""CompressionService end to end: batching path, fan-out path, cache."""

import numpy as np
import pytest

from repro.core import decompress as mono_decompress
from repro.core.errors import InvalidInputError
from repro.serve import CompressionService, ServiceConfig, is_chunked

from tests.helpers import assert_error_bounded, value_range


@pytest.fixture
def svc():
    s = CompressionService(
        ServiceConfig(workers=2, backend="thread", warmup=False, batch_wait_s=0.002)
    )
    yield s
    s.close()


class TestRoundTrip:
    def test_small_field_single_stream(self, svc, smooth_f32):
        blob = svc.compress(smooth_f32, rel=1e-3).result(30)
        assert not is_chunked(blob)  # below the chunk threshold
        recon = svc.decompress(blob).result(30)
        assert recon.shape == smooth_f32.shape
        assert_error_bounded(smooth_f32, recon, 1e-3 * value_range(smooth_f32))
        # byte-compatible with the plain library decoder
        assert np.array_equal(recon, mono_decompress(blob))

    def test_large_field_fans_out_chunked(self, rng):
        data = np.cumsum(rng.normal(size=300_000)).astype(np.float32)
        with CompressionService(
            workers=2, backend="thread", warmup=False, chunk_bytes=256 << 10
        ) as svc:
            blob = svc.compress(data, rel=1e-3).result(60)
            assert is_chunked(blob)
            recon = svc.decompress(blob, cache=False).result(60)
        assert_error_bounded(data, recon, 1e-3 * value_range(data))

    def test_abs_bound(self, svc, smooth_f32):
        blob = svc.compress(smooth_f32, abs=0.05).result(30)
        recon = svc.decompress(blob).result(30)
        assert_error_bounded(smooth_f32, recon, 0.05)

    def test_bound_arguments_validated(self, svc, smooth_f32):
        with pytest.raises(InvalidInputError):
            svc.compress(smooth_f32)
        with pytest.raises(InvalidInputError):
            svc.compress(smooth_f32, rel=1e-3, abs=0.1)

    def test_many_concurrent_requests(self, svc, rng):
        fields = [
            np.cumsum(rng.normal(size=5_000)).astype(np.float32) for _ in range(8)
        ]
        blobs = [svc.compress(f, rel=1e-3) for f in fields]
        recons = [svc.decompress(b.result(30), cache=False) for b in blobs]
        for f, r in zip(fields, recons):
            assert_error_bounded(f, r.result(30), 1e-3 * value_range(f))


class TestDecodeCache:
    def test_second_decode_is_a_cache_hit(self, svc, smooth_f32):
        blob = svc.compress(smooth_f32, rel=1e-3).result(30)
        first = svc.decompress(blob).result(30)
        assert svc.cache.hits == 0
        second = svc.decompress(blob).result(30)
        assert svc.cache.hits == 1
        assert np.array_equal(first, second)
        assert not second.flags.writeable  # served as a read-only view

    def test_cache_opt_out(self, svc, smooth_f32):
        blob = svc.compress(smooth_f32, rel=1e-3).result(30)
        svc.decompress(blob, cache=False).result(30)
        svc.decompress(blob, cache=False).result(30)
        assert svc.cache.hits == 0 and len(svc.cache) == 0

    def test_different_streams_do_not_collide(self, svc, smooth_f32, rough_f32):
        b1 = svc.compress(smooth_f32, rel=1e-3).result(30)
        b2 = svc.compress(rough_f32, rel=1e-3).result(30)
        r1 = svc.decompress(b1).result(30)
        r2 = svc.decompress(b2).result(30)
        svc.decompress(b1).result(30)
        svc.decompress(b2).result(30)
        assert svc.cache.hits == 2
        assert not np.array_equal(r1, r2)


class TestLifecycle:
    def test_stats_snapshot_sections(self, svc, smooth_f32):
        blob = svc.compress(smooth_f32, rel=1e-3).result(30)
        svc.decompress(blob).result(30)
        snap = svc.stats_snapshot()
        assert snap["counters"]["service.requests"] == 2
        assert snap["counters"]["service.bytes_in"] > 0
        assert snap["counters"]["service.bytes_out"] > 0
        assert snap["histograms"]["service.compress_latency_s"]["count"] == 1
        assert snap["histograms"]["service.decompress_latency_s"]["count"] == 1
        assert "cache" in snap
        assert "pool.utilization" in snap["gauges"]

    def test_close_is_idempotent(self, smooth_f32):
        svc = CompressionService(workers=1, backend="thread", warmup=False)
        svc.compress(smooth_f32, rel=1e-3).result(30)
        svc.close()
        svc.close()

    def test_context_manager_with_exception_cancels(self, smooth_f32):
        with pytest.raises(RuntimeError, match="abort"):
            with CompressionService(workers=1, backend="thread", warmup=False) as svc:
                svc.compress(smooth_f32, rel=1e-3).result(30)
                raise RuntimeError("abort")

    def test_config_overrides(self):
        svc = CompressionService(workers=1, backend="thread", warmup=False, batch_max=3)
        try:
            assert svc.config.workers == 1
            assert svc.config.batch_max == 3
        finally:
            svc.close()
