"""Worker pool: dispatch, warmup, crash recovery, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.serve import PoolClosed, TaskError, WorkerCrash, WorkerPool
from repro.serve.pool import CancelledError, PoolFuture, register_task

# -- injectable tasks (registered at import time so fork workers see them) --

_FLAKY = {"crashes_left": 0}
_FLAKY_LOCK = threading.Lock()


@register_task("test.flaky")
def _flaky(arg):
    """Crash the worker while holding the task, the first N times."""
    with _FLAKY_LOCK:
        if _FLAKY["crashes_left"] > 0:
            _FLAKY["crashes_left"] -= 1
            raise WorkerCrash("injected crash")
    return arg


@register_task("test.always_crash")
def _always_crash(arg):
    raise WorkerCrash("injected crash (permanent)")


@register_task("test.fail")
def _fail(arg):
    raise ValueError(f"bad arg {arg!r}")


@register_task("test.crash_if_file")
def _crash_if_file(path):
    """Crash (consuming the marker file) if it exists; else succeed.

    Works across fork respawns, unlike in-memory flags: each replacement
    process inherits the parent's pristine memory, but the filesystem is
    shared, so exactly one crash happens per marker file.
    """
    import os

    try:
        os.unlink(path)
    except FileNotFoundError:
        return "survived"
    raise WorkerCrash("injected crash (file marker)")


class TestFuture:
    def test_result_and_callback(self):
        f = PoolFuture()
        seen = []
        f.add_done_callback(lambda g: seen.append(g.result()))
        f.set_result(42)
        assert f.done() and f.result() == 42 and seen == [42]

    def test_callback_after_done_fires_immediately(self):
        f = PoolFuture()
        f.set_result(1)
        seen = []
        f.add_done_callback(lambda g: seen.append(g.result()))
        assert seen == [1]

    def test_exception_raised_from_result(self):
        f = PoolFuture()
        f.set_exception(ValueError("boom"))
        assert isinstance(f.exception(), ValueError)
        with pytest.raises(ValueError):
            f.result()

    def test_cancel(self):
        f = PoolFuture()
        assert f.cancel()
        assert f.cancelled()
        with pytest.raises(CancelledError):
            f.result()
        f.set_result(1)  # late completion is ignored
        assert f.cancelled()

    def test_cancel_after_done_fails(self):
        f = PoolFuture()
        f.set_result(1)
        assert not f.cancel()

    def test_result_timeout(self):
        with pytest.raises(TimeoutError):
            PoolFuture().result(timeout=0.01)


class TestThreadPool:
    def test_submit_and_map(self):
        with WorkerPool(nworkers=2, backend="thread", warmup=False) as pool:
            assert pool.submit("pool.echo", 7).result(5) == 7
            assert pool.map("pool.echo", [1, 2, 3]) == [1, 2, 3]

    def test_wait_ready(self):
        pool = WorkerPool(nworkers=2, backend="thread", warmup=True)
        try:
            assert pool.wait_ready(30.0)
        finally:
            pool.shutdown()

    def test_task_exception_propagates(self):
        with WorkerPool(nworkers=1, backend="thread", warmup=False) as pool:
            f = pool.submit("test.fail", "x")
            with pytest.raises(ValueError, match="bad arg"):
                f.result(5)
            # the worker survives a plain exception
            assert pool.submit("pool.echo", 1).result(5) == 1

    def test_unknown_task_is_task_error(self):
        with WorkerPool(nworkers=1, backend="thread", warmup=False) as pool:
            with pytest.raises(TaskError, match="unknown task"):
                pool.submit("test.nope", None).result(5)

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(nworkers=1, backend="thread", warmup=False)
        pool.shutdown()
        with pytest.raises(PoolClosed):
            pool.submit("pool.echo", 1)

    def test_graceful_shutdown_drains_queue(self):
        pool = WorkerPool(nworkers=1, backend="thread", warmup=False)
        futures = [pool.submit("pool.sleep", 0.02) for _ in range(5)]
        pool.shutdown(wait=True)
        assert all(f.result(0) == 0.02 for f in futures)

    def test_abandoning_shutdown_cancels_queued(self):
        pool = WorkerPool(nworkers=1, backend="thread", warmup=False)
        pool.wait_ready(10.0)
        blocker = pool.submit("pool.sleep", 0.2)
        time.sleep(0.08)  # let the blocker reach a worker
        queued = [pool.submit("pool.sleep", 0.2) for _ in range(4)]
        t0 = time.perf_counter()
        pool.shutdown(wait=False)
        assert time.perf_counter() - t0 < 10.0
        # the in-flight task completed; queued tasks were cancelled
        assert blocker.result(5) == 0.2
        assert any(f.cancelled() for f in queued)

    def test_utilization_and_queue_depth(self):
        with WorkerPool(nworkers=1, backend="thread", warmup=False) as pool:
            pool.map("pool.sleep", [0.02] * 3)
            assert 0.0 < pool.utilization() <= 1.0
            assert pool.queue_depth == 0

    def test_nworkers_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(nworkers=0)

    def test_bad_backend_name(self):
        with pytest.raises(ValueError):
            WorkerPool(nworkers=1, backend="gpu")


class TestCrashRecovery:
    def test_crash_loses_no_request(self):
        """Acceptance: a worker crash mid-task resubmits the task; the
        caller's future still resolves."""
        with _FLAKY_LOCK:
            _FLAKY["crashes_left"] = 1
        with WorkerPool(nworkers=2, backend="thread", warmup=False) as pool:
            assert pool.submit("test.flaky", "payload").result(10) == "payload"
            assert pool.stats.counter("pool.worker_crashes").value == 1
            assert pool.stats.counter("pool.resubmissions").value == 1
            # the replacement worker serves subsequent traffic
            assert pool.map("pool.echo", list(range(4))) == list(range(4))

    def test_repeated_crashes_fail_the_task_not_the_pool(self):
        with WorkerPool(
            nworkers=2, backend="thread", warmup=False, max_task_retries=1
        ) as pool:
            f = pool.submit("test.always_crash", None)
            with pytest.raises(WorkerCrash):
                f.result(10)
            # pool stays usable: only that task died
            assert pool.submit("pool.echo", 5).result(10) == 5

    def test_crash_loop_breaks_the_pool(self):
        pool = WorkerPool(
            nworkers=1, backend="thread", warmup=False, max_task_retries=0
        )
        try:
            failures = [pool.submit("test.always_crash", i) for i in range(8)]
            for f in failures:
                assert isinstance(f.exception(10), WorkerCrash)
            deadline = time.perf_counter() + 10
            while time.perf_counter() < deadline and not pool._broken:
                time.sleep(0.01)
            assert pool._broken
            with pytest.raises(PoolClosed, match="broken"):
                pool.submit("pool.echo", 1)
        finally:
            pool.shutdown()


class TestProcessPool:
    def test_round_trip(self):
        with WorkerPool(nworkers=2, backend="process", warmup=False) as pool:
            assert pool.wait_ready(60.0)
            data = np.linspace(0.0, 1.0, 2048, dtype=np.float32)
            from repro.serve import compress_chunked, decompress_chunked

            chunked = compress_chunked(
                data, rel=1e-3, block=64, group_blocks=4, chunk_elems=512, pool=pool
            )
            assert np.array_equal(
                decompress_chunked(chunked, pool=pool), decompress_chunked(chunked)
            )

    def test_process_crash_recovery(self, tmp_path):
        # A process worker hard-exits on WorkerCrash; liveness polling
        # detects the death, respawns a worker, and resubmits the task.
        marker = tmp_path / "crash-once"
        marker.touch()
        with WorkerPool(
            nworkers=1, backend="process", warmup=False, max_task_retries=2
        ) as pool:
            assert pool.wait_ready(60.0)
            assert pool.submit("test.crash_if_file", str(marker)).result(60) == "survived"
            assert pool.stats.counter("pool.worker_crashes").value >= 1
            assert pool.submit("pool.echo", "alive").result(30) == "alive"
