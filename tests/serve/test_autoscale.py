"""Autoscaler: pure-policy properties, cooldown hysteresis, live resize."""

import time

import numpy as np
import pytest

from repro.serve import AutoscaleConfig, Autoscaler, WorkerPool
from repro.serve.autoscale import decide


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakePool:
    def __init__(self, workers=1):
        self.queue_depth = 0
        self.workers_alive = workers
        self.resizes = []

    def resize(self, n):
        self.resizes.append(n)
        self.workers_alive = n
        return True


CFG = AutoscaleConfig(
    min_workers=1, max_workers=4, high_watermark=4.0, low_watermark=1.0,
    cooldown_s=5.0,
)


class TestDecidePolicy:
    def test_ramp_grows_to_max(self):
        workers, last = 1, -100.0
        t = 0.0
        for _ in range(10):
            target = decide(CFG, workers, queue_depth=100, now=t, last_change=last)
            if target != workers:
                workers, last = target, t
            t += CFG.cooldown_s + 0.1
        assert workers == CFG.max_workers

    def test_drain_shrinks_to_min(self):
        workers, last = 4, -100.0
        t = 0.0
        for _ in range(10):
            target = decide(CFG, workers, queue_depth=0, now=t, last_change=last)
            if target != workers:
                workers, last = target, t
            t += CFG.cooldown_s + 0.1
        assert workers == CFG.min_workers

    def test_cooldown_holds(self):
        # immediately after a change, any load level answers "hold"
        for depth in (0, 3, 1000):
            assert decide(CFG, 2, depth, now=1.0, last_change=0.0) == 2

    def test_hold_band_between_watermarks(self):
        # 1.0 <= depth/worker <= 4.0 is the hold band
        assert decide(CFG, 2, 4, now=100.0, last_change=0.0) == 2
        assert decide(CFG, 2, 8, now=100.0, last_change=0.0) == 2

    def test_out_of_bounds_workers_clamped(self):
        cfg = AutoscaleConfig(min_workers=2, max_workers=3, cooldown_s=0.0)
        assert decide(cfg, 1, 0, now=1.0, last_change=0.0) >= 2
        assert decide(cfg, 8, 1000, now=1.0, last_change=0.0) <= 3

    def test_step_bounds_change(self):
        cfg = AutoscaleConfig(max_workers=8, step=2, cooldown_s=0.0)
        assert decide(cfg, 2, 1000, now=1.0, last_change=0.0) == 4
        assert decide(cfg, 4, 0, now=1.0, last_change=0.0) == 2

    def test_random_trace_never_oscillates_within_cooldown(self):
        """Property: over a random load trace, every target stays in
        bounds and two consecutive changes are >= cooldown_s apart."""
        rng = np.random.default_rng(0)
        workers, last = 1, -100.0
        changes = []
        t = 0.0
        for _ in range(500):
            depth = int(rng.integers(0, 40))
            target = decide(CFG, workers, depth, now=t, last_change=last)
            assert CFG.min_workers <= target <= CFG.max_workers
            if target != workers:
                changes.append(t)
                workers, last = target, t
            t += float(rng.uniform(0.1, 2.0))
        gaps = np.diff(changes)
        assert gaps.size == 0 or gaps.min() >= CFG.cooldown_s

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_workers=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(low_watermark=4.0, high_watermark=4.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(step=0)


class TestAutoscalerTicks:
    def test_tick_grows_under_load(self):
        clock = FakeClock()
        pool = FakePool(workers=1)
        scaler = Autoscaler(pool, CFG, clock=clock)
        pool.queue_depth = 50
        assert scaler.tick() == 2
        assert pool.resizes == [2]
        # inside cooldown nothing moves, however deep the queue
        clock.advance(1.0)
        pool.queue_depth = 500
        assert scaler.tick() == 2
        clock.advance(CFG.cooldown_s)
        assert scaler.tick() == 3

    def test_tick_shrinks_when_idle(self):
        clock = FakeClock()
        pool = FakePool(workers=4)
        scaler = Autoscaler(pool, CFG, clock=clock)
        pool.queue_depth = 0
        for expect in (3, 2, 1, 1):
            assert scaler.tick() == expect
            clock.advance(CFG.cooldown_s + 0.1)

    def test_scheduler_inflight_follows_capacity(self):
        class FakeSched:
            max_inflight = 8
            queue_depth = 0

        clock = FakeClock()
        pool = FakePool(workers=1)
        sched = FakeSched()
        scaler = Autoscaler(pool, CFG, scheduler=sched, clock=clock)
        pool.queue_depth = 100
        scaler.tick()
        assert pool.workers_alive == 2
        assert sched.max_inflight == 16  # 8 per worker x 2 workers

    def test_metrics_emitted(self):
        clock = FakeClock()
        pool = FakePool(workers=1)
        scaler = Autoscaler(pool, CFG, clock=clock)
        pool.queue_depth = 50
        scaler.tick()
        snap = scaler.stats.snapshot()
        assert snap["counters"]["autoscale.scale_ups"] == 1
        assert snap["gauges"]["autoscale.target"]["value"] == 2


class TestLivePoolResize:
    def test_grow_and_shrink_live_pool(self):
        with WorkerPool(nworkers=1, warmup=False) as pool:
            assert pool.wait_ready(30)
            assert pool.workers_alive == 1
            assert pool.resize(3)
            deadline = time.monotonic() + 10
            while pool.workers_alive < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.workers_alive == 3
            assert pool.wait_ready(30)
            # all workers idle: shrink drains down to 1
            assert pool.resize(1)
            deadline = time.monotonic() + 10
            while pool.workers_alive > 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.workers_alive == 1
            # the remaining worker still serves traffic
            assert pool.submit("pool.echo", 42).result(30) == 42

    def test_resize_validation_and_closed_pool(self):
        pool = WorkerPool(nworkers=1, warmup=False)
        with pytest.raises(ValueError):
            pool.resize(0)
        pool.shutdown()
        assert pool.resize(2) is False

    def test_background_autoscaler_with_live_pool(self):
        cfg = AutoscaleConfig(
            min_workers=1, max_workers=3, high_watermark=2.0,
            low_watermark=1.0, cooldown_s=0.05, poll_s=0.02,
        )
        with WorkerPool(nworkers=1, warmup=False) as pool:
            assert pool.wait_ready(30)
            with Autoscaler(pool, cfg) as scaler:
                futs = [pool.submit("pool.sleep", 0.05) for _ in range(30)]
                deadline = time.monotonic() + 15
                grew = False
                while time.monotonic() < deadline:
                    if pool.workers_alive > 1:
                        grew = True
                        break
                    time.sleep(0.01)
                assert grew, "autoscaler never grew the pool under load"
                for f in futs:
                    f.result(60)
                # drained: shrink back toward min
                deadline = time.monotonic() + 15
                while pool.workers_alive > 1 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert pool.workers_alive == 1
                assert scaler.stats.snapshot()["counters"].get(
                    "autoscale.scale_ups", 0
                ) >= 1
