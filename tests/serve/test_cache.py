"""Decode cache: content addressing, LRU byte-budget eviction."""

import numpy as np
import pytest

from repro.serve import DecodeCache, content_key
from repro.serve.stats import MetricsRegistry


def _arr(n, fill):
    return np.full(n, fill, dtype=np.float32)


class TestContentKey:
    def test_identical_bytes_identical_key(self):
        a = np.arange(100, dtype=np.uint8)
        assert content_key(a) == content_key(a.copy())
        assert content_key(a) == content_key(bytes(a))

    def test_one_bit_flip_changes_key(self):
        a = np.arange(100, dtype=np.uint8)
        b = a.copy()
        b[50] ^= 1
        assert content_key(a) != content_key(b)


class TestDecodeCache:
    def test_miss_then_hit(self):
        cache = DecodeCache(max_bytes=1 << 20)
        assert cache.get("k") is None
        assert cache.put("k", _arr(10, 1.0))
        hit = cache.get("k")
        assert np.array_equal(hit, _arr(10, 1.0))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_arrays_are_read_only(self):
        cache = DecodeCache(max_bytes=1 << 20)
        cache.put("k", _arr(10, 1.0))
        hit = cache.get("k")
        with pytest.raises(ValueError):
            hit[0] = 9.0

    def test_lru_eviction_by_byte_budget(self):
        # budget fits exactly two 400-byte arrays
        cache = DecodeCache(max_bytes=800)
        cache.put("a", _arr(100, 1.0))
        cache.put("b", _arr(100, 2.0))
        cache.get("a")  # touch a: b becomes least recently used
        cache.put("c", _arr(100, 3.0))
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1
        assert cache.bytes <= 800

    def test_oversized_value_rejected(self):
        cache = DecodeCache(max_bytes=100)
        assert not cache.put("big", _arr(1000, 1.0))
        assert len(cache) == 0

    def test_replacing_a_key_reuses_budget(self):
        cache = DecodeCache(max_bytes=800)
        cache.put("k", _arr(100, 1.0))
        cache.put("k", _arr(100, 2.0))
        assert len(cache) == 1
        assert cache.bytes == 400
        assert cache.get("k")[0] == 2.0

    def test_clear(self):
        cache = DecodeCache(max_bytes=1 << 20)
        cache.put("k", _arr(10, 1.0))
        cache.clear()
        assert len(cache) == 0 and cache.bytes == 0
        assert cache.get("k") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            DecodeCache(max_bytes=-1)

    def test_publishes_gauges(self):
        stats = MetricsRegistry()
        cache = DecodeCache(max_bytes=1 << 20, stats=stats)
        cache.put("k", _arr(10, 1.0))
        cache.get("k")
        snap = stats.snapshot()
        assert snap["gauges"]["cache.bytes"]["value"] == 40
        assert snap["gauges"]["cache.entries"]["value"] == 1
        assert snap["gauges"]["cache.hit_rate"]["value"] == 1.0
