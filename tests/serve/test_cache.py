"""Decode cache: content addressing, LRU byte-budget eviction."""

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.serve import DecodeCache, content_key
from repro.serve.stats import MetricsRegistry


def _arr(n, fill):
    return np.full(n, fill, dtype=np.float32)


class TestContentKey:
    def test_identical_bytes_identical_key(self):
        a = np.arange(100, dtype=np.uint8)
        assert content_key(a) == content_key(a.copy())
        assert content_key(a) == content_key(bytes(a))

    def test_one_bit_flip_changes_key(self):
        a = np.arange(100, dtype=np.uint8)
        b = a.copy()
        b[50] ^= 1
        assert content_key(a) != content_key(b)


class TestDecodeCache:
    def test_miss_then_hit(self):
        cache = DecodeCache(max_bytes=1 << 20)
        assert cache.get("k") is None
        assert cache.put("k", _arr(10, 1.0))
        hit = cache.get("k")
        assert np.array_equal(hit, _arr(10, 1.0))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_arrays_are_read_only(self):
        cache = DecodeCache(max_bytes=1 << 20)
        cache.put("k", _arr(10, 1.0))
        hit = cache.get("k")
        with pytest.raises(ValueError):
            hit[0] = 9.0

    def test_lru_eviction_by_byte_budget(self):
        # budget fits exactly two 400-byte arrays
        cache = DecodeCache(max_bytes=800)
        cache.put("a", _arr(100, 1.0))
        cache.put("b", _arr(100, 2.0))
        cache.get("a")  # touch a: b becomes least recently used
        cache.put("c", _arr(100, 3.0))
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.evictions == 1
        assert cache.bytes <= 800

    def test_oversized_value_rejected(self):
        cache = DecodeCache(max_bytes=100)
        assert not cache.put("big", _arr(1000, 1.0))
        assert len(cache) == 0

    def test_replacing_a_key_reuses_budget(self):
        cache = DecodeCache(max_bytes=800)
        cache.put("k", _arr(100, 1.0))
        cache.put("k", _arr(100, 2.0))
        assert len(cache) == 1
        assert cache.bytes == 400
        assert cache.get("k")[0] == 2.0

    def test_clear(self):
        cache = DecodeCache(max_bytes=1 << 20)
        cache.put("k", _arr(10, 1.0))
        cache.clear()
        assert len(cache) == 0 and cache.bytes == 0
        assert cache.get("k") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            DecodeCache(max_bytes=-1)

    def test_publishes_gauges(self):
        stats = MetricsRegistry()
        cache = DecodeCache(max_bytes=1 << 20, stats=stats)
        cache.put("k", _arr(10, 1.0))
        cache.get("k")
        snap = stats.snapshot()
        assert snap["gauges"]["cache.bytes"]["value"] == 40
        assert snap["gauges"]["cache.entries"]["value"] == 1
        assert snap["gauges"]["cache.hit_rate"]["value"] == 1.0


class TestContentKeyDtypes:
    """The key must hash raw bytes; value-casting float buffers to uint8
    (the old behaviour) collapsed distinct streams onto one key."""

    def test_float_arrays_hash_their_raw_bytes(self):
        a = np.array([1.5, 2.5], dtype=np.float32)
        assert content_key(a) == content_key(a.tobytes())
        assert content_key(a) == content_key(a.view(np.uint8))

    def test_distinct_float_buffers_get_distinct_keys(self):
        # both round/cast to the same integers; raw bytes differ
        a = np.array([1.5, 2.5], dtype=np.float32)
        b = np.array([1.7, 2.7], dtype=np.float32)
        assert content_key(a) != content_key(b)

    def test_distinct_small_floats_get_distinct_keys(self):
        # uint8 value-cast would collapse both to [0, 0]
        a = np.array([0.1, 0.2], dtype=np.float64)
        b = np.array([0.3, 0.4], dtype=np.float64)
        assert content_key(a) != content_key(b)

    def test_non_contiguous_array_hashes_like_contiguous_copy(self):
        base = np.arange(64, dtype=np.float32)
        strided = base[::2]
        assert not strided.flags.c_contiguous
        assert content_key(strided) == content_key(strided.copy())

    def test_int_dtypes_supported(self):
        a = np.arange(16, dtype=np.int64)
        assert content_key(a) == content_key(a.tobytes())

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            content_key(np.array([object()], dtype=object))


class TestCacheThreadSafety:
    def test_concurrent_put_get_stress(self):
        """8 threads × 10k mixed ops against a small budget: internal
        accounting (bytes, entries) must match a serial recount."""
        import threading

        cache = DecodeCache(max_bytes=40 * 64)  # room for ~64 entries
        n_threads, per_thread = 8, 10_000
        barrier = threading.Barrier(n_threads)
        errors = []

        def run(tid):
            rng = seeded_rng(tid)
            barrier.wait()
            try:
                for k in range(per_thread):
                    key = f"k{rng.integers(0, 128)}"
                    if k % 3 == 0:
                        cache.put(key, _arr(10, float(tid)))
                    else:
                        got = cache.get(key)
                        if got is not None:
                            assert got.nbytes == 40
                    if k % 1024 == 0:
                        # the racy accessors the bug report named
                        assert len(cache) >= 0
                        assert ("k0" in cache) in (True, False)
                        assert cache.bytes >= 0
                        assert 0.0 <= cache.hit_rate <= 1.0
            except Exception as e:  # pragma: no cover - surfaced below
                errors.append(e)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.bytes <= cache.max_bytes
        assert cache.bytes == 40 * len(cache)
        assert cache.hits + cache.misses == sum(
            1 for _ in range(n_threads) for k in range(per_thread) if k % 3 != 0
        )

    def test_eviction_counter_published_as_delta(self):
        """The registry counter must equal the cache's eviction total even
        though publishes happen incrementally (the old code assigned the
        raw count on every publish, clobbering concurrent increments)."""
        stats = MetricsRegistry()
        cache = DecodeCache(max_bytes=800, stats=stats)  # two 400B entries
        for i in range(6):
            cache.put(f"k{i}", _arr(100, float(i)))
        assert cache.evictions == 4
        assert stats.counter("cache.evictions").value == 4
        # further churn keeps them in lockstep
        cache.put("k9", _arr(100, 9.0))
        assert stats.counter("cache.evictions").value == cache.evictions == 5

    def test_eviction_counter_survives_external_increments(self):
        # a counter is shared state: direct assignment would erase this
        stats = MetricsRegistry()
        stats.counter("cache.evictions").inc(100)
        cache = DecodeCache(max_bytes=800, stats=stats)
        for i in range(3):
            cache.put(f"k{i}", _arr(100, float(i)))
        assert cache.evictions == 1
        assert stats.counter("cache.evictions").value == 101


class TestPutIsolation:
    def test_mutation_after_put_does_not_poison_hits(self):
        """Regression: put() used to store a read-only *view* of the
        caller's array, so the caller's original writable reference could
        keep mutating the cached bytes in place."""
        cache = DecodeCache(max_bytes=1 << 20)
        arr = np.arange(10, dtype=np.float32)
        cache.put("k", arr)
        arr[:] = -1.0  # caller keeps writing through its own reference
        hit = cache.get("k")
        assert np.array_equal(hit, np.arange(10, dtype=np.float32))

    def test_view_into_foreign_buffer_is_copied(self):
        cache = DecodeCache(max_bytes=1 << 20)
        backing = np.zeros(100, dtype=np.float32)
        cache.put("k", backing[10:20])
        backing[:] = 7.0
        assert np.array_equal(cache.get("k"), np.zeros(10, dtype=np.float32))

    def test_frozen_owndata_array_cached_without_copy(self):
        # an own-data read-only array cannot be written through any live
        # reference, so the cache may alias it directly
        cache = DecodeCache(max_bytes=1 << 20)
        arr = np.arange(10, dtype=np.float32)
        arr.flags.writeable = False
        cache.put("k", arr)
        hit = cache.get("k")
        assert np.shares_memory(hit, arr)


class TestDrop:
    def test_drop_removes_entry_and_bytes(self):
        cache = DecodeCache(max_bytes=1 << 20)
        cache.put("k", _arr(100, 1.0))
        assert cache.bytes == 400
        assert cache.drop("k") is True
        assert cache.bytes == 0 and len(cache) == 0
        assert cache.get("k") is None

    def test_drop_missing_key_is_harmless(self):
        cache = DecodeCache(max_bytes=1 << 20)
        assert cache.drop("nope") is False

    def test_drop_publishes_gauges(self):
        stats = MetricsRegistry()
        cache = DecodeCache(max_bytes=1 << 20, stats=stats)
        cache.put("k", _arr(100, 1.0))
        cache.drop("k")
        assert stats.gauge("cache.bytes").value == 0
        assert stats.gauge("cache.entries").value == 0
