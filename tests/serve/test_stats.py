"""Metrics registry: counters, gauges, histograms, JSON snapshot."""

import json
import time

from repro.serve.stats import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        assert g.value == 2 and g.max == 5

    def test_histogram_summary(self):
        h = Histogram()
        for v in [0.001, 0.002, 0.004, 0.100]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min_s"] == 0.001
        assert s["max_s"] == 0.100
        assert s["mean_s"] == (0.001 + 0.002 + 0.004 + 0.100) / 4

    def test_histogram_quantiles_bracket_observations(self):
        h = Histogram()
        for _ in range(99):
            h.observe(0.001)
        h.observe(10.0)
        # p50 stays near the mass, p99+ reaches the straggler's bucket
        assert h.quantile(0.50) <= 0.002
        assert h.quantile(0.999) >= 1.0
        assert h.quantile(0.999) <= h.max

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.summary()["count"] == 0
        assert h.summary()["min_s"] == 0.0

    def test_overflow_bucket(self):
        h = Histogram()
        h.observe(1e9)  # beyond the last finite bound
        assert h.count == 1
        assert h.quantile(0.5) == 1e9  # clamped to observed max


class TestRegistry:
    def test_names_autovivify_and_persist(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc()
        assert reg.counter("x").value == 2

    def test_observe_latency(self):
        reg = MetricsRegistry()
        dt = reg.observe_latency("lat_s", time.perf_counter() - 0.05)
        assert dt >= 0.05
        assert reg.histogram("lat_s").count == 1

    def test_snapshot_is_json_dumpable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.01)
        back = json.loads(reg.to_json())
        assert back["counters"]["c"] == 1
        assert back["gauges"]["g"] == {"value": 7.0, "max": 7.0}
        assert back["histograms"]["h"]["count"] == 1
        assert back["uptime_s"] >= 0
