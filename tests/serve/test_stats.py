"""Metrics registry: counters, gauges, histograms, JSON snapshot."""

import json
import time

import pytest

from repro.serve.stats import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_tracks_high_water_mark(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        assert g.value == 2 and g.max == 5

    def test_histogram_summary(self):
        h = Histogram()
        for v in [0.001, 0.002, 0.004, 0.100]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min_s"] == 0.001
        assert s["max_s"] == 0.100
        assert s["mean_s"] == (0.001 + 0.002 + 0.004 + 0.100) / 4

    def test_histogram_quantiles_bracket_observations(self):
        h = Histogram()
        for _ in range(99):
            h.observe(0.001)
        h.observe(10.0)
        # p50 stays near the mass, p99+ reaches the straggler's bucket
        assert h.quantile(0.50) <= 0.002
        assert h.quantile(0.999) >= 1.0
        assert h.quantile(0.999) <= h.max

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.summary()["count"] == 0
        assert h.summary()["min_s"] == 0.0

    def test_overflow_bucket(self):
        h = Histogram()
        h.observe(1e9)  # beyond the last finite bound
        assert h.count == 1
        assert h.quantile(0.5) == 1e9  # clamped to observed max


class TestRegistry:
    def test_names_autovivify_and_persist(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc()
        assert reg.counter("x").value == 2

    def test_observe_latency(self):
        reg = MetricsRegistry()
        dt = reg.observe_latency("lat_s", time.perf_counter() - 0.05)
        assert dt >= 0.05
        assert reg.histogram("lat_s").count == 1

    def test_snapshot_is_json_dumpable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.01)
        back = json.loads(reg.to_json())
        assert back["counters"]["c"] == 1
        assert back["gauges"]["g"] == {"value": 7.0, "max": 7.0}
        assert back["histograms"]["h"]["count"] == 1
        assert back["uptime_s"] >= 0


class TestThreadSafety:
    """Lost-update races: N threads hammer one metric; totals must be exact.

    Python's ``value += n`` is not atomic (LOAD/ADD/STORE interleave across
    threads), so without per-metric locks these counts drift low."""

    N_THREADS = 8
    PER_THREAD = 10_000

    def _hammer(self, fn):
        import threading

        barrier = threading.Barrier(self.N_THREADS)

        def run(i):
            barrier.wait()
            for k in range(self.PER_THREAD):
                fn(i, k)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_exact_total(self):
        c = Counter()
        self._hammer(lambda i, k: c.inc())
        assert c.value == self.N_THREADS * self.PER_THREAD

    def test_counter_exact_weighted_total(self):
        c = Counter()
        self._hammer(lambda i, k: c.inc(0.5))
        assert c.value == pytest.approx(self.N_THREADS * self.PER_THREAD * 0.5)

    def test_gauge_high_water_mark_exact(self):
        g = Gauge()
        self._hammer(lambda i, k: g.set(i * self.PER_THREAD + k))
        assert g.max == (self.N_THREADS - 1) * self.PER_THREAD + self.PER_THREAD - 1

    def test_histogram_exact_count_and_sum(self):
        h = Histogram()
        self._hammer(lambda i, k: h.observe(0.001))
        n = self.N_THREADS * self.PER_THREAD
        assert h.count == n
        assert h.sum == pytest.approx(n * 0.001)
        assert sum(h.counts) == n

    def test_histogram_snapshot_internally_consistent(self):
        """buckets() must never expose a torn (counts, count, sum) triple
        while observers race with writers."""
        import threading

        h = Histogram()
        stop = threading.Event()
        torn = []

        def read():
            while not stop.is_set():
                _bounds, counts, count, total = h.buckets()
                if sum(counts) != count:
                    torn.append((sum(counts), count))
                # sum of 0.001-valued observations must track count
                if abs(total - count * 0.001) > 1e-9 * max(count, 1):
                    torn.append(("sum", total, count))

        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers:
            t.start()
        try:
            self._hammer(lambda i, k: h.observe(0.001))
        finally:
            stop.set()
            for t in readers:
                t.join()
        assert not torn


class TestHistogramBuckets:
    def test_exact_bucket_boundary_lands_in_its_bucket(self):
        # bounds are 1e-6 * 2**k; an observation exactly on a bound must
        # count toward that bound's bucket (le semantics), not the next
        h = Histogram()
        h.observe(h.bounds[3])
        assert h.counts[3] == 1
        assert h.quantile(1.0) == h.bounds[3]

    def test_quantiles_across_buckets(self):
        h = Histogram()
        for _ in range(90):
            h.observe(1e-6)    # bucket 0
        for _ in range(10):
            h.observe(1e-3)    # a much higher bucket
        assert h.quantile(0.5) == 1e-6
        assert h.quantile(0.89) == 1e-6
        # p95 falls in the 1e-3 observation's bucket, clamped to max
        assert h.quantile(0.95) == 1e-3
        assert h.quantile(1.0) == 1e-3

    def test_overflow_bucket_quantile_clamps_to_max(self):
        h = Histogram()
        h.observe(0.5)
        h.observe(1e9)  # overflow: beyond the last ~67s bound
        assert h.counts[-1] == 1
        assert h.quantile(0.25) == h.bounds[19]  # 0.5 lands in the ~0.52s bucket
        assert h.quantile(1.0) == 1e9  # overflow quantile = observed max
        s = h.summary()
        assert s["max_s"] == 1e9
        assert s["count"] == 2

    def test_registry_concurrent_autovivify(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(8)

        def run():
            barrier.wait()
            for _ in range(1000):
                reg.counter("same").inc()

        threads = [threading.Thread(target=run) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("same").value == 8000
