"""Serve-suite fixtures.

The autouse leak check enforces the shm transport's central lifecycle
invariant: no test may leave a shared-memory segment mapped or linked.
Both views are checked -- the in-process creator registry
(``active_segments``) and the kernel's ``/dev/shm`` directory (which
also catches segments a crashed child left behind).
"""

import glob

import pytest

from repro.serve.shm import SEGMENT_PREFIX, active_segments


def _dev_shm_segments():
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_shm_leaks():
    before = set(_dev_shm_segments())
    yield
    leaked = active_segments()
    assert not leaked, f"test leaked live shm arenas: {leaked}"
    on_disk = [s for s in _dev_shm_segments() if s not in before]
    assert not on_disk, f"test leaked /dev/shm segments: {on_disk}"
