"""Multi-worker speedup (slow; run with ``pytest -m slow``).

Acceptance: on a host with >= 4 cores, 4 process workers beat 1 worker on
a >= 64 MiB field.  The same campaign (with honest cpu_count recorded) is
what ``benchmarks/bench_serve.py`` writes into BENCH_serve.json.
"""

import os
import time

import numpy as np

from tests.helpers import seeded_rng
import pytest

from repro.serve import WorkerPool, compress_chunked


def _field(mb: int) -> np.ndarray:
    rng = seeded_rng(7)
    n = mb * (1 << 20) // 4
    return np.cumsum(rng.normal(size=n)).astype(np.float32)


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason=f"needs >= 4 cores for a meaningful speedup (host has {os.cpu_count()})",
)
def test_four_process_workers_beat_one_on_64mib():
    data = _field(64)
    chunk_bytes = 8 << 20

    def run(nworkers: int) -> float:
        with WorkerPool(nworkers=nworkers, backend="process", warmup=True) as pool:
            pool.wait_ready(120.0)
            t0 = time.perf_counter()
            chunked = compress_chunked(
                data, rel=1e-3, chunk_bytes=chunk_bytes, pool=pool
            )
            wall = time.perf_counter() - t0
            assert chunked.nchunks == 8
        return wall

    t1 = run(1)
    t4 = run(4)
    # loose bound: scheduling noise, fork overhead, and memory bandwidth
    # keep this far from 4x, but parallelism must show
    assert t4 < t1, f"4 workers ({t4:.3f}s) not faster than 1 ({t1:.3f}s)"


@pytest.mark.slow
def test_serve_bench_records_speedup_inputs(tmp_path):
    from repro.serve.bench import BenchConfig, dump_report, run_serve_bench

    report = run_serve_bench(
        BenchConfig(size_mb=8, workers=2, backend="process", requests=4, clients=2)
    )
    assert not report["errors"]
    assert report["cpu_count"] == os.cpu_count()
    path = tmp_path / "BENCH_serve.json"
    dump_report(report, path)
    assert path.exists()
