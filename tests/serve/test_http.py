"""HTTP front end: protocol, taxonomy, quotas, shedding, stats."""

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro import compress, decompress
from repro.serve import CompressionService, HttpConfig, HttpFrontend, TokenBucket
from repro.serve.http import parse_hostport


# -- raw asyncio test client -------------------------------------------------

async def _request(port, method, path, headers=None, body=b""):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        hdrs = {"connection": "close", "content-length": str(len(body))}
        if headers:
            hdrs.update(headers)
        lines = [f"{method} {path} HTTP/1.1", "host: test"]
        lines += [f"{k}: {v}" for k, v in hdrs.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        resp = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            k, _, v = line.decode("latin-1").partition(":")
            resp[k.strip().lower()] = v.strip()
        payload = await reader.readexactly(int(resp.get("content-length", 0)))
        return status, resp, payload
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


@contextlib.asynccontextmanager
async def _frontend(service, **cfg_kwargs):
    cfg_kwargs.setdefault("port", 0)
    fe = HttpFrontend(service, HttpConfig(**cfg_kwargs))
    await fe.start()
    try:
        yield fe
    finally:
        await fe.stop()


@pytest.fixture(scope="module")
def service():
    with CompressionService(workers=2, backend="thread") as svc:
        yield svc


# -- pure units --------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_empty(self):
        t = [0.0]
        b = TokenBucket(rate=1.0, burst=3.0, clock=lambda: t[0])
        assert all(b.try_acquire() for _ in range(3))
        assert not b.try_acquire()
        assert b.retry_after() == pytest.approx(1.0)

    def test_refill_over_time(self):
        t = [0.0]
        b = TokenBucket(rate=2.0, burst=2.0, clock=lambda: t[0])
        assert b.try_acquire(2.0)
        assert not b.try_acquire()
        t[0] = 0.5  # 1 token back
        assert b.try_acquire()
        assert not b.try_acquire()

    def test_burst_caps_refill(self):
        t = [0.0]
        b = TokenBucket(rate=100.0, burst=2.0, clock=lambda: t[0])
        t[0] = 1000.0
        assert b.try_acquire(2.0)
        assert not b.try_acquire(1.0)

    def test_zero_rate_retry_after(self):
        b = TokenBucket(rate=0.0, burst=1.0, clock=lambda: 0.0)
        assert b.try_acquire()
        assert b.retry_after() == 60.0


class TestParseHostport:
    @pytest.mark.parametrize("spec,expect", [
        (":8080", ("127.0.0.1", 8080)),
        ("0.0.0.0:9001", ("0.0.0.0", 9001)),
        ("9090", ("127.0.0.1", 9090)),
        ("myhost:", ("myhost", 8080)),
        ("myhost", ("myhost", 8080)),
        ("", ("127.0.0.1", 8080)),
    ])
    def test_specs(self, spec, expect):
        assert parse_hostport(spec) == expect


# -- end-to-end protocol -----------------------------------------------------

class TestRoundtrip:
    def test_compress_then_decompress_matches_library(self, service):
        rng = np.random.default_rng(3)
        data = rng.standard_normal(20_000).astype(np.float32)

        async def go():
            async with _frontend(service) as fe:
                st, hdrs, blob = await _request(
                    fe.port, "POST", "/v1/compress?rel=1e-3",
                    headers={"x-dtype": "float32", "x-shape": "20000"},
                    body=data.tobytes(),
                )
                assert st == 200
                assert hdrs["content-type"] == "application/octet-stream"
                assert int(hdrs["x-uncompressed-bytes"]) == data.nbytes
                st2, hdrs2, raw = await _request(
                    fe.port, "POST", "/v1/decompress", body=bytes(blob)
                )
                assert st2 == 200
                assert hdrs2["x-dtype"] == "float32"
                assert hdrs2["x-shape"] == "20000"
                return bytes(blob), raw

        blob, raw = asyncio.run(go())
        # the HTTP path produces the same stream the library does
        ref = compress(data, rel=1e-3)
        assert bytes(np.asarray(ref, dtype=np.uint8).tobytes()) == blob
        recon = np.frombuffer(raw, dtype=np.float32)
        assert np.array_equal(recon, decompress(ref))

    def test_healthz_and_keepalive(self, service):
        async def go():
            async with _frontend(service) as fe:
                # two requests over one connection
                reader, writer = await asyncio.open_connection("127.0.0.1", fe.port)
                try:
                    for _ in range(2):
                        writer.write(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                        await writer.drain()
                        status = (await reader.readline()).split()[1]
                        assert status == b"200"
                        n = 0
                        while True:
                            line = await reader.readline()
                            if line in (b"\r\n", b""):
                                break
                            if line.lower().startswith(b"content-length"):
                                n = int(line.split(b":")[1])
                        assert await reader.readexactly(n) == b"ok\n"
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()

        asyncio.run(go())

    def test_stats_endpoint_matches_registry(self, service):
        async def go():
            async with _frontend(service) as fe:
                st, hdrs, body = await _request(fe.port, "GET", "/v1/stats")
                assert st == 200
                assert hdrs["content-type"] == "application/json"
                return json.loads(body)

        snap = asyncio.run(go())
        ref = service.stats_snapshot()
        assert set(snap) == set(ref)
        assert snap["counters"]["http.requests"] >= 1
        assert set(snap["cache"]) == set(ref["cache"])
        # the served snapshot is the same registry, one tick earlier
        for name in ref["counters"]:
            if not name.startswith("http."):
                assert snap["counters"][name] == ref["counters"][name]


class TestTaxonomy400:
    @pytest.mark.parametrize("path,headers,body", [
        ("/v1/compress", {}, b"\x00" * 16),  # no error bound
        ("/v1/compress?rel=1e-3&abs=1.0", {}, b"\x00" * 16),  # both bounds
        ("/v1/compress?rel=banana", {}, b"\x00" * 16),
        ("/v1/compress?rel=1e-3", {"x-dtype": "notadtype"}, b"\x00" * 16),
        ("/v1/compress?rel=1e-3", {"x-shape": "4,x"}, b"\x00" * 16),
        ("/v1/compress?rel=1e-3", {"x-shape": "9999"}, b"\x00" * 16),  # mismatch
        ("/v1/compress?rel=1e-3", {}, b"\x00" * 7),  # ragged float32 body
        ("/v1/compress?rel=1e-3", {"x-deadline-ms": "soon"}, b"\x00" * 16),
        ("/v1/decompress", {}, b""),  # empty body
    ])
    def test_client_errors_are_labelled(self, service, path, headers, body):
        async def go():
            async with _frontend(service) as fe:
                return await _request(fe.port, "POST", path, headers, body)

        st, hdrs, payload = asyncio.run(go())
        assert st == 400
        assert hdrs["content-type"] == "application/json"
        err = json.loads(payload)
        assert err["error"] == "client"
        assert err["detail"]

    def test_garbage_stream_is_client_error(self, service):
        async def go():
            async with _frontend(service) as fe:
                return await _request(
                    fe.port, "POST", "/v1/decompress", body=b"not a stream"
                )

        st, _, payload = asyncio.run(go())
        assert st == 400
        assert json.loads(payload)["error"] == "client"

    def test_unknown_route_and_bad_method(self, service):
        async def go():
            async with _frontend(service) as fe:
                r404 = await _request(fe.port, "GET", "/v1/nope")
                r405 = await _request(fe.port, "GET", "/v1/compress?rel=1e-3")
                r405s = await _request(fe.port, "POST", "/v1/stats")
                rbad = await _request(fe.port, "POST", "/v1/compress",
                                      headers={"content-length": "wat"})
                return r404, r405, r405s, rbad

        r404, r405, r405s, rbad = asyncio.run(go())
        assert r404[0] == 404 and json.loads(r404[2])["error"] == "client"
        assert r405[0] == 405
        assert r405s[0] == 405
        assert rbad[0] == 400

    def test_oversized_body_is_413(self, service):
        async def go():
            async with _frontend(service, max_body_bytes=64) as fe:
                return await _request(
                    fe.port, "POST", "/v1/compress?rel=1e-3", body=b"\x00" * 128
                )

        st, _, payload = asyncio.run(go())
        assert st == 413
        assert json.loads(payload)["error"] == "client"


class TestOverload:
    def test_tenant_quota_isolated_429(self, service):
        async def go():
            async with _frontend(service, tenant_rate=0.001,
                                 tenant_burst=2.0) as fe:
                data = np.zeros(16, dtype=np.float32).tobytes()
                results = []
                for _ in range(3):
                    results.append(await _request(
                        fe.port, "POST", "/v1/compress?rel=1e-3",
                        headers={"x-tenant": "alice"}, body=data,
                    ))
                other = await _request(
                    fe.port, "POST", "/v1/compress?rel=1e-3",
                    headers={"x-tenant": "bob"}, body=data,
                )
                return results, other

        results, other = asyncio.run(go())
        assert [r[0] for r in results] == [200, 200, 429]
        st, hdrs, payload = results[2]
        assert json.loads(payload)["error"] == "quota"
        assert float(hdrs["retry-after"]) > 0
        # bob has his own bucket: unaffected by alice's exhaustion
        assert other[0] == 200

    def test_admission_control_503(self, service):
        async def go():
            async with _frontend(service, max_inflight=0) as fe:
                return await _request(
                    fe.port, "POST", "/v1/compress?rel=1e-3",
                    body=np.zeros(16, dtype=np.float32).tobytes(),
                )

        st, hdrs, payload = asyncio.run(go())
        assert st == 503
        assert json.loads(payload)["error"] == "backpressure"
        assert float(hdrs["retry-after"]) > 0

    def test_mixed_deadlines_concurrently(self, service):
        """Concurrent clients: expired deadlines shed 503, live ones 200."""
        data = np.arange(4096, dtype=np.float32).tobytes()

        async def go():
            async with _frontend(service) as fe:
                def req(deadline_ms):
                    return _request(
                        fe.port, "POST", "/v1/compress?rel=1e-3",
                        headers={"x-deadline-ms": deadline_ms}, body=data,
                    )

                outs = await asyncio.gather(
                    req("0"), req("30000"), req("0"), req("30000"), req("-5"),
                )
                snap = await _request(fe.port, "GET", "/v1/stats")
                return outs, json.loads(snap[2])

        outs, snap = asyncio.run(go())
        statuses = [o[0] for o in outs]
        assert statuses == [503, 200, 503, 200, 503]
        for o in (outs[0], outs[2], outs[4]):
            assert json.loads(o[2])["error"] == "deadline"
            assert "retry-after" in o[1]
        assert snap["counters"]["http.deadline_sheds"] >= 3
        assert snap["counters"]["http.errors.deadline"] >= 3
        assert snap["counters"]["http.status.503"] >= 3

    def test_default_deadline_applies_when_no_header(self, service):
        async def go():
            async with _frontend(service, default_deadline_ms=0.0) as fe:
                return await _request(
                    fe.port, "POST", "/v1/compress?rel=1e-3",
                    body=np.zeros(16, dtype=np.float32).tobytes(),
                )

        st, _, payload = asyncio.run(go())
        assert st == 503
        assert json.loads(payload)["error"] == "deadline"
