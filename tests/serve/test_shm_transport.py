"""Zero-copy shared-memory transport: arena lifecycle, descriptor
safety, crash reclamation, and bit-identity vs the pickled path."""

import os
import time

import numpy as np
import pytest

from repro.serve import (
    CompressionService,
    ServiceConfig,
    UnknownTask,
    WorkerPool,
    classify_error,
    is_classified,
)
from repro.serve.chunked import compress_chunked, decompress_chunked
from repro.serve.pool import TaskError, WorkerCrash, register_task
from repro.serve.resilience import RETRYABLE_ERRORS
from repro.serve.shm import (
    DEFAULT_MIN_BYTES,
    SEGMENT_PREFIX,
    ShmArena,
    ShmDescriptor,
    ShmReclaimed,
    ShmTransport,
    active_segments,
    make_transport,
    payload_nbytes,
)


@register_task("test.shm_sum")
def _shm_sum(arg):
    return float(np.asarray(arg["data"]).sum())


@register_task("test.shm_echo_big")
def _shm_echo_big(arg):
    # returns an array large enough to ride the shm path back
    return np.asarray(arg).copy()


@register_task("test.shm_sleep_echo")
def _shm_sleep_echo(arg):
    time.sleep(float(arg["delay"]))
    return np.asarray(arg["data"]).copy()


@register_task("test.shm_crash_if_file")
def _shm_crash_if_file(arg):
    """Crash (consuming the marker file) if it exists; else echo the data.

    The filesystem marker survives fork respawns, so exactly one crash
    happens per marker file."""
    try:
        os.unlink(arg["marker"])
    except FileNotFoundError:
        return np.asarray(arg["data"]).copy()
    raise WorkerCrash("injected crash (file marker)")


# ---------------------------------------------------------------------------
# Arena lifecycle
# ---------------------------------------------------------------------------

class TestArena:
    def test_put_get_roundtrip(self):
        with ShmArena(nslots=4, slot_bytes=1 << 16) as arena:
            arr = np.arange(1000, dtype=np.float32).reshape(10, 100)
            desc = arena.put(arr)
            assert isinstance(desc, ShmDescriptor)
            assert desc.segment.startswith(SEGMENT_PREFIX)
            view = arena.get(desc)
            assert view.shape == arr.shape and view.dtype == arr.dtype
            assert np.array_equal(view, arr)
            assert not view.flags.writeable  # zero-copy views are read-only
            copied = arena.get(desc, copy=True)
            assert copied.flags.writeable
            assert arena.release(desc)
            assert arena.slots_in_use() == 0

    def test_arena_full_and_oversize_return_none(self):
        with ShmArena(nslots=1, slot_bytes=1 << 12) as arena:
            big = np.zeros(1 << 14, dtype=np.uint8)
            assert arena.put(big) is None  # larger than any slot
            d1 = arena.put(np.zeros(16, dtype=np.uint8))
            assert d1 is not None
            assert arena.put(np.zeros(16, dtype=np.uint8)) is None  # full
            arena.release(d1)
            assert arena.put(np.zeros(16, dtype=np.uint8)) is not None

    def test_generation_guard_invalidates_stale_descriptors(self):
        with ShmArena(nslots=1, slot_bytes=1 << 12) as arena:
            stale = arena.put(np.arange(8, dtype=np.int64))
            arena.release(stale)
            # slot is reused: generation moves on
            fresh = arena.put(np.arange(8, dtype=np.int64) * 2)
            assert fresh.slot == stale.slot
            assert fresh.generation > stale.generation
            with pytest.raises(ShmReclaimed):
                arena.get(stale)  # classified error, never garbage bytes
            assert np.array_equal(arena.get(fresh), np.arange(8) * 2)
            arena.release(fresh)

    def test_double_release_is_noop(self):
        with ShmArena(nslots=2, slot_bytes=1 << 12) as arena:
            d = arena.put(np.zeros(4, dtype=np.float64))
            other = arena.put(np.ones(4, dtype=np.float64))
            assert arena.release(d) is True
            assert arena.release(d) is False  # second release: safe no-op
            # and it must not have freed the *other* claim
            assert arena.slots_in_use() == 1
            arena.release(other)

    def test_reclaim_owner_frees_and_invalidates(self):
        with ShmArena(nslots=4, slot_bytes=1 << 12) as arena:
            d = arena.put(np.zeros(32, dtype=np.uint8))
            assert arena.slots_in_use() == 1
            assert arena.reclaim_owner(os.getpid()) == 1
            assert arena.slots_in_use() == 0
            with pytest.raises(ShmReclaimed):
                arena.get(d)
            assert arena.release(d) is False
            assert arena.reclaim_owner(os.getpid()) == 0  # idempotent

    def test_double_close_and_destroy_idempotent(self):
        arena = ShmArena(nslots=1, slot_bytes=1 << 12)
        name = arena.name
        assert name in active_segments()
        arena.close()
        arena.close()  # second close must not raise
        arena.destroy()
        arena.destroy()  # nor a second destroy
        assert name not in active_segments()

    def test_attach_shares_state(self):
        with ShmArena(nslots=2, slot_bytes=1 << 12) as arena:
            peer = ShmArena.attach(arena.spec())
            try:
                d = arena.put(np.arange(16, dtype=np.int32))
                assert np.array_equal(peer.get(d), np.arange(16))
                assert peer.slots_in_use() == 1
                peer.release(d)
                assert arena.slots_in_use() == 0
            finally:
                peer.close()  # attacher never unlinks

    def test_validation(self):
        with pytest.raises(ValueError):
            ShmArena(nslots=0)
        with pytest.raises(ValueError):
            ShmArena(nslots=1, slot_bytes=8)


# ---------------------------------------------------------------------------
# Transport encode/decode walkers
# ---------------------------------------------------------------------------

class TestTransport:
    def test_encode_decode_nested_payloads(self):
        tr = ShmTransport.create(nslots=8, slot_bytes=1 << 16, min_bytes=1)
        try:
            big = np.arange(512, dtype=np.float64)
            payload = {
                "data": big,
                "meta": ("name", [big * 2, {"inner": big + 1}]),
                "scalar": 7,
            }
            encoded, refs = tr.encode(payload)
            assert len(refs) == 3
            assert isinstance(encoded["data"], ShmDescriptor)
            assert encoded["scalar"] == 7
            decoded = tr.decode(encoded)
            assert np.array_equal(decoded["data"], big)
            assert np.array_equal(decoded["meta"][1][0], big * 2)
            assert np.array_equal(decoded["meta"][1][1]["inner"], big + 1)
            assert tr.descriptors(encoded) == refs
            tr.release_refs(refs)
            assert tr.arena.slots_in_use() == 0
        finally:
            tr.destroy()

    def test_small_arrays_ride_pickle(self):
        tr = ShmTransport.create(nslots=4, slot_bytes=1 << 16)
        try:
            small = np.arange(4, dtype=np.float32)  # < DEFAULT_MIN_BYTES
            encoded, refs = tr.encode({"x": small})
            assert refs == []
            assert isinstance(encoded["x"], np.ndarray)
            assert tr.fallbacks == 0  # below min_bytes is not a fallback
        finally:
            tr.destroy()

    def test_arena_full_falls_back_and_counts(self):
        tr = ShmTransport.create(nslots=1, slot_bytes=1 << 16, min_bytes=1)
        try:
            a = np.arange(64, dtype=np.float64)
            _, refs = tr.encode(a)
            assert len(refs) == 1
            encoded2, refs2 = tr.encode(a)  # arena full: raw ndarray
            assert refs2 == [] and isinstance(encoded2, np.ndarray)
            assert tr.fallbacks == 1
            tr.release_refs(refs)
        finally:
            tr.destroy()

    def test_release_all_walks_results(self):
        tr = ShmTransport.create(nslots=4, slot_bytes=1 << 16, min_bytes=1)
        try:
            encoded, _ = tr.encode([np.zeros(64), (np.ones(64),)])
            assert tr.arena.slots_in_use() == 2
            tr.release_all(encoded)
            assert tr.arena.slots_in_use() == 0
        finally:
            tr.destroy()

    def test_payload_nbytes(self):
        a = np.zeros(100, dtype=np.float32)
        assert payload_nbytes(a) == 400
        assert payload_nbytes({"x": a, "y": [a, (a, 1, "s")]}) == 1200
        assert payload_nbytes("not an array") == 0

    def test_make_transport(self):
        assert make_transport(None) is None
        assert make_transport("pickle") is None
        tr = make_transport("shm", nslots=2, slot_bytes=1 << 12)
        try:
            assert isinstance(tr, ShmTransport)
            assert make_transport(tr) is tr
        finally:
            tr.destroy()
        with pytest.raises(ValueError):
            make_transport("carrier-pigeon")


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class TestTaxonomy:
    def test_shm_reclaimed_is_classified_and_retryable(self):
        e = ShmReclaimed("slot 0 reclaimed")
        assert isinstance(e, TaskError)
        assert is_classified(e)
        assert isinstance(e, RETRYABLE_ERRORS)

    def test_unknown_task_is_classified_not_retried(self):
        e = UnknownTask("unknown task 'nope'")
        assert is_classified(e)
        assert classify_error(e) == "unknown_task"
        with WorkerPool(nworkers=1, warmup=False) as pool:
            with pytest.raises(UnknownTask):
                pool.submit("test.not_registered_anywhere", 1).result(10)


# ---------------------------------------------------------------------------
# Pool integration: bit-identity and crash safety
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["thread", "process"])
class TestPoolShm:
    def test_roundtrip_and_counters(self, backend):
        with WorkerPool(
            nworkers=2, backend=backend, warmup=False, transport="shm",
        ) as pool:
            assert pool.wait_ready(30)
            assert pool.transport_name == "shm"
            arr = np.arange(100_000, dtype=np.float32)
            out = pool.submit("test.shm_echo_big", arr).result(60)
            assert np.array_equal(out, arr)
            # results are copied out of the arena: mutating the returned
            # array must be safe (no aliasing of a recycled slot)
            out[0] = -1.0
            again = pool.submit("test.shm_echo_big", arr).result(60)
            assert again[0] == 0.0
            snap = pool.stats.snapshot()["counters"]
            assert snap["pool.transport.dispatch_shm_bytes"] >= arr.nbytes
            assert snap["pool.transport.result_shm_bytes"] >= arr.nbytes
            assert pool.transport.arena.slots_in_use() == 0

    def test_dict_payloads_cross_intact(self, backend):
        with WorkerPool(
            nworkers=1, backend=backend, warmup=False, transport="shm",
            shm_min_bytes=1,
        ) as pool:
            assert pool.wait_ready(30)
            data = np.arange(5000, dtype=np.float64)
            got = pool.submit("test.shm_sum", {"data": data}).result(60)
            assert got == pytest.approx(float(data.sum()))

    def test_chunked_bit_identity_vs_pickle(self, backend):
        rng = np.random.default_rng(0)
        data = np.cumsum(rng.normal(size=60_000)).astype(np.float32)
        kw = dict(chunk_elems=20_000, rel=1e-3)
        serial = compress_chunked(data, **kw)
        with WorkerPool(
            nworkers=2, backend=backend, warmup=False, transport="shm",
            shm_min_bytes=1,
        ) as pool:
            assert pool.wait_ready(30)
            pooled = compress_chunked(data, pool=pool, **kw)
            assert serial.nchunks == pooled.nchunks
            for a, b in zip(serial.chunks, pooled.chunks):
                assert a.tobytes() == b.tobytes()
            recon = decompress_chunked(pooled, pool=pool)
            assert recon.tobytes() == decompress_chunked(serial).tobytes()

    def test_crash_recovery_reclaims_slots(self, backend, tmp_path):
        marker = tmp_path / "crash-once"
        marker.write_text("x")
        with WorkerPool(
            nworkers=1, backend=backend, warmup=False, transport="shm",
        ) as pool:
            assert pool.wait_ready(30)
            # crashes once (consuming the marker), then the resubmission
            # succeeds on the replacement worker -- with the shm payload
            # re-encoded fresh from the original argument
            data = np.arange(30_000, dtype=np.float32)
            out = pool.submit(
                "test.shm_crash_if_file", {"marker": str(marker), "data": data}
            ).result(60)
            assert np.array_equal(out, data)
            # in-flight shm claims of the dead dispatch were released
            deadline = time.monotonic() + 10
            while pool.transport.arena.slots_in_use() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.transport.arena.slots_in_use() == 0


class TestProcessKillMidTask:
    def test_sigkill_mid_write_recovers_and_reclaims(self):
        """SIGKILL a process worker while its task (and its shm request
        payload) is in flight: the task must be resubmitted and succeed,
        and every slot the dead worker could have held must be freed."""
        with WorkerPool(
            nworkers=1, backend="process", warmup=False, transport="shm",
            max_task_retries=2,
        ) as pool:
            assert pool.wait_ready(30)
            data = np.arange(50_000, dtype=np.float32)
            fut = pool.submit(
                "test.shm_sleep_echo", {"delay": 0.4, "data": data}
            )
            time.sleep(0.15)  # let the worker pick it up and start sleeping
            victims = [
                w.handle.pid for w in pool._workers.values()
                if getattr(w.handle, "pid", None)
            ]
            assert victims
            os.kill(victims[0], 9)
            out = fut.result(60)
            assert np.array_equal(out, data)
            deadline = time.monotonic() + 10
            while pool.transport.arena.slots_in_use() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.transport.arena.slots_in_use() == 0


# ---------------------------------------------------------------------------
# Service-level bit identity (the tentpole acceptance bar)
# ---------------------------------------------------------------------------

class TestServiceBitIdentity:
    @pytest.mark.parametrize("size", [20_000, 300_000])
    def test_shm_service_streams_match_pickle_service(self, size):
        rng = np.random.default_rng(7)
        data = np.cumsum(rng.normal(size=size)).astype(np.float32)
        blobs = {}
        for transport in ("pickle", "shm"):
            with CompressionService(
                ServiceConfig(
                    workers=2, backend="thread", warmup=False,
                    transport=transport, chunk_bytes=256 << 10,
                    shm_min_bytes=1,
                )
            ) as svc:
                blob = svc.compress(data, rel=1e-3).result(120)
                recon = svc.decompress(blob, cache=False).result(120)
                blobs[transport] = (blob.tobytes(), recon.tobytes())
        assert blobs["shm"][0] == blobs["pickle"][0]  # CSZ2/CSZ2CHNK bytes
        assert blobs["shm"][1] == blobs["pickle"][1]

    def test_default_min_bytes_skips_tiny_arrays(self):
        assert DEFAULT_MIN_BYTES == 4096
