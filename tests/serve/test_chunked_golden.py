"""Golden-byte compatibility for CSZ2CHNK chunked containers.

``tests/data/golden_chunked*.csz2chnk`` were produced by the container
writer at the time the format was introduced and are committed as byte
fixtures (mirroring the v1 codec fixtures in ``test_v1_compat.py``).
Every future revision must keep decoding them bit-for-bit: chunked
archives on disk do not get rewritten when the software updates, so any
drift in the container header, manifest JSON, CRC placement or chunk
stream layout is a compatibility break this file catches.
"""

from pathlib import Path

import numpy as np

from repro.serve.chunked import (
    CHUNK_MAGIC,
    ChunkedStream,
    decompress_chunked,
    is_chunked,
)

DATA = Path(__file__).resolve().parent.parent / "data"


def load(name):
    return np.fromfile(DATA / name, dtype=np.uint8)


class TestGoldenChunked1D:
    def test_magic_and_parse(self):
        buf = load("golden_chunked.csz2chnk")
        assert is_chunked(buf)
        assert buf[: len(CHUNK_MAGIC)].tobytes() == CHUNK_MAGIC
        ch = ChunkedStream.from_bytes(buf)
        assert ch.nchunks == 4
        assert ch.manifest.axis == "flat"
        assert ch.manifest.mode == "outlier"
        assert ch.manifest.group_blocks == 16

    def test_chunks_pass_manifest_crcs(self):
        ch = ChunkedStream.from_bytes(load("golden_chunked.csz2chnk"))
        assert ch.verify() == []

    def test_decodes_bit_identically(self):
        ch = ChunkedStream.from_bytes(load("golden_chunked.csz2chnk"))
        expected = np.fromfile(DATA / "golden_chunked_expected.f32", dtype=np.float32)
        out = decompress_chunked(ch)
        assert out.dtype == np.float32
        assert np.array_equal(out.reshape(-1), expected)

    def test_chunkwise_decode_matches_slices(self):
        ch = ChunkedStream.from_bytes(load("golden_chunked.csz2chnk"))
        expected = np.fromfile(DATA / "golden_chunked_expected.f32", dtype=np.float32)
        for i, (lo, hi) in enumerate(ch.element_spans()):
            assert np.array_equal(ch.decode_chunk(i).reshape(-1), expected[lo:hi])

    def test_reserialization_is_byte_stable(self):
        # parse -> serialize must reproduce the committed container exactly
        buf = load("golden_chunked.csz2chnk")
        assert np.array_equal(ChunkedStream.from_bytes(buf).to_bytes(), buf)

    def test_cli_decodes_golden_container(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "g.csz2"
        load("golden_chunked.csz2chnk").tofile(src)
        assert main(["decompress", str(src), "-o", str(tmp_path / "g.f32")]) == 0
        out = capsys.readouterr().out
        assert "chunked container: 4 chunk(s)" in out
        got = np.fromfile(tmp_path / "g.f32", dtype=np.float32)
        expected = np.fromfile(DATA / "golden_chunked_expected.f32", dtype=np.float32)
        assert np.array_equal(got, expected)

    def test_corrupted_chunk_is_reported_by_cli(self, tmp_path, capsys):
        from repro.cli import main

        buf = load("golden_chunked.csz2chnk").copy()
        buf[-20] ^= 0xFF  # damage the last chunk's stream bytes
        src = tmp_path / "bad.csz2"
        buf.tofile(src)
        assert main(["decompress", str(src), "-o", str(tmp_path / "bad.f32")]) == 1
        assert "fail their manifest CRC32" in capsys.readouterr().out


class TestGoldenChunked2D:
    def test_parse_rows_axis(self):
        ch = ChunkedStream.from_bytes(load("golden_chunked_2d.csz2chnk"))
        assert ch.nchunks == 3
        assert ch.manifest.axis == "rows"
        assert ch.manifest.shape == (48, 256)
        assert ch.manifest.predictor_ndim == 2
        assert ch.verify() == []

    def test_decodes_bit_identically(self):
        ch = ChunkedStream.from_bytes(load("golden_chunked_2d.csz2chnk"))
        expected = np.fromfile(
            DATA / "golden_chunked_2d_expected.f32", dtype=np.float32
        ).reshape(48, 256)
        out = decompress_chunked(ch)
        assert out.shape == (48, 256)
        assert np.array_equal(out, expected)
