"""serve-bench load generator: report structure and verification."""

import json

from repro.serve.bench import BenchConfig, dump_report, format_report, run_serve_bench


def test_report_shape_and_no_errors(tmp_path):
    cfg = BenchConfig(
        size_mb=0.4, workers=1, backend="thread", requests=2, clients=1, chunk_mb=0.2
    )
    report = run_serve_bench(cfg)
    assert report["errors"] == []
    assert report["config"]["workers"] == 1
    assert report["chunks_per_request"] == 2
    assert report["wall_s"] > 0
    assert report["throughput_mbs"] > 0
    hists = report["stats"]["histograms"]
    assert hists["service.compress_latency_s"]["count"] == 2
    assert hists["service.decompress_latency_s"]["count"] == 2

    text = format_report(report)
    assert "serve-bench:" in text
    assert "throughput" in text
    assert "ERRORS" not in text

    path = tmp_path / "report.json"
    dump_report(report, path)
    assert json.loads(path.read_text())["config"]["requests"] == 2


def test_multiple_clients_share_the_work():
    report = run_serve_bench(
        BenchConfig(
            size_mb=0.2, workers=2, backend="thread", requests=5, clients=2,
            chunk_mb=1.0, distinct=1,
        )
    )
    assert report["errors"] == []
    # 5 requests across 2 clients -> both latency histograms saw 5
    assert report["stats"]["histograms"]["service.compress_latency_s"]["count"] == 5
    # one distinct field: repeat decodes hit the cache
    assert report["stats"]["counters"].get("service.requests", 0) == 10
