"""Chunked streaming engine: alignment, bit-identity, container format."""

import numpy as np
import pytest

from repro.core import compress as mono_compress, decompress as mono_decompress
from repro.core.errors import InvalidInputError, StreamFormatError
from repro.core.stream import aligned_chunk_elems, chunk_granule, chunk_spans
from repro.serve import (
    ChunkedStream,
    WorkerPool,
    compress_chunked,
    decompress_chunked,
    is_chunked,
    plan_chunks,
)


class TestAlignmentHelpers:
    def test_granule_is_block_times_group(self):
        assert chunk_granule(32, 16) == 512
        assert chunk_granule(64, 4096) == 64 * 4096

    def test_granule_rejects_bad_block(self):
        with pytest.raises(StreamFormatError):
            chunk_granule(0, 16)
        with pytest.raises(StreamFormatError):
            chunk_granule(33, 16)

    def test_aligned_rounds_down_to_granule(self):
        # granule = 512; 1300 elements round down to 1024
        assert aligned_chunk_elems(1300, 32, 16) == 1024

    def test_aligned_never_below_one_granule(self):
        assert aligned_chunk_elems(10, 32, 16) == 512

    def test_spans_cover_exactly(self):
        spans = chunk_spans(2600, 1024, 32, 16)
        assert spans == [(0, 1024), (1024, 2048), (2048, 2600)]
        assert spans[0][0] == 0 and spans[-1][1] == 2600
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo

    def test_spans_interior_boundaries_group_aligned(self):
        granule = chunk_granule(32, 16)
        for lo, _ in chunk_spans(10_000, 1000, 32, 16)[1:]:
            assert lo % granule == 0

    def test_plan_flat(self):
        spans, axis = plan_chunks(
            (2600,), 4, block=32, group_blocks=16, chunk_elems=1024
        )
        assert axis == "flat"
        assert spans == [(0, 1024), (1024, 2048), (2048, 2600)]

    def test_plan_rows_aligned_to_tile(self):
        # 2-D predictor, block=64 -> 8x8 tiles: row spans are multiples of 8
        spans, axis = plan_chunks(
            (40, 50), 4, predictor_ndim=2, block=64, chunk_elems=800
        )
        assert axis == "rows"
        assert spans[0][0] == 0 and spans[-1][1] == 40
        for lo, _ in spans[1:]:
            assert lo % 8 == 0

    def test_plan_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            plan_chunks((0,), 4)

    def test_plan_rejects_ndim_mismatch(self):
        with pytest.raises(InvalidInputError):
            plan_chunks((100,), 4, predictor_ndim=2)


def _walk(rng, n, dtype):
    return np.cumsum(rng.normal(size=n)).astype(dtype)


class TestBitIdentity:
    """Acceptance: chunked output decodes bit-identically to the
    monolithic codec across dimensionalities, dtypes, and modes."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("mode", ["plain", "outlier"])
    def test_1d(self, rng, dtype, mode):
        data = _walk(rng, 5000, dtype)
        chunked = compress_chunked(
            data, rel=1e-3, mode=mode, block=64, group_blocks=4, chunk_elems=1024
        )
        assert chunked.nchunks > 1
        mono = mono_decompress(
            mono_compress(data, rel=1e-3, mode=mode, block=64, group_blocks=4)
        )
        assert np.array_equal(decompress_chunked(chunked), mono)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("mode", ["plain", "outlier"])
    def test_2d(self, rng, dtype, mode):
        data = _walk(rng, 40 * 50, dtype).reshape(40, 50)
        chunked = compress_chunked(
            data, rel=1e-3, mode=mode, block=64, predictor_ndim=2, chunk_elems=800
        )
        assert chunked.nchunks > 1
        mono = mono_decompress(
            mono_compress(data, rel=1e-3, mode=mode, block=64, predictor_ndim=2)
        )
        assert np.array_equal(decompress_chunked(chunked), mono)
        assert decompress_chunked(chunked).shape == (40, 50)

    def test_single_chunk_stream_is_byte_identical(self, rng):
        # When everything fits one chunk, the chunk IS the monolithic stream.
        data = _walk(rng, 3000, np.float32)
        chunked = compress_chunked(data, rel=1e-3, block=64, group_blocks=4096)
        assert chunked.nchunks == 1
        mono = mono_compress(data, rel=1e-3, block=64, group_blocks=4096)
        assert np.array_equal(chunked.chunks[0], mono)

    def test_abs_bound(self, rng):
        data = _walk(rng, 5000, np.float32)
        chunked = compress_chunked(
            data, abs=0.01, block=64, group_blocks=4, chunk_elems=1024
        )
        recon = decompress_chunked(chunked)
        assert np.abs(recon.astype(np.float64) - data).max() <= 0.01 * (1 + 1e-6)

    def test_pooled_equals_serial(self, rng):
        data = _walk(rng, 8000, np.float32)
        serial = compress_chunked(
            data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024
        )
        with WorkerPool(nworkers=2, backend="thread", warmup=False) as pool:
            pooled = compress_chunked(
                data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024, pool=pool
            )
            recon = decompress_chunked(pooled, pool=pool)
        assert pooled.nchunks == serial.nchunks
        for a, b in zip(pooled.chunks, serial.chunks):
            assert np.array_equal(a, b)
        assert np.array_equal(recon, decompress_chunked(serial))


class TestContainer:
    def test_round_trip_through_bytes(self, rng):
        data = _walk(rng, 5000, np.float32)
        chunked = compress_chunked(
            data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024
        )
        buf = chunked.to_bytes()
        assert is_chunked(buf)
        back = ChunkedStream.from_bytes(buf)
        assert back.nchunks == chunked.nchunks
        assert back.manifest == chunked.manifest
        assert np.array_equal(decompress_chunked(back), decompress_chunked(chunked))

    def test_manifest_eb_abs_exact(self, rng):
        data = _walk(rng, 5000, np.float32)
        chunked = compress_chunked(
            data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024
        )
        back = ChunkedStream.from_bytes(chunked.to_bytes())
        # float hex encoding round-trips the resolved bound exactly
        assert back.manifest.eb_abs == chunked.manifest.eb_abs

    def test_plain_stream_is_not_chunked(self, rng):
        mono = mono_compress(_walk(rng, 1000, np.float32), rel=1e-3)
        assert not is_chunked(mono)

    def test_manifest_corruption_detected(self, rng):
        data = _walk(rng, 5000, np.float32)
        buf = compress_chunked(
            data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024
        ).to_bytes()
        bad = buf.copy()
        bad[20] ^= 0xFF  # inside the JSON manifest
        with pytest.raises(StreamFormatError):
            ChunkedStream.from_bytes(bad)

    def test_truncation_detected(self, rng):
        data = _walk(rng, 5000, np.float32)
        buf = compress_chunked(
            data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024
        ).to_bytes()
        with pytest.raises(StreamFormatError):
            ChunkedStream.from_bytes(buf[: buf.size - 10])

    def test_bad_magic_rejected(self):
        with pytest.raises(StreamFormatError):
            ChunkedStream.from_bytes(np.zeros(64, dtype=np.uint8))

    def test_chunk_corruption_detected_on_decode(self, rng):
        # Chunk bytes are v2 streams: flipping one payload byte trips the
        # group CRC during decompression.
        from repro.core import IntegrityError

        data = _walk(rng, 5000, np.float32)
        buf = compress_chunked(
            data, rel=1e-3, block=64, group_blocks=4, chunk_elems=1024
        ).to_bytes()
        bad = buf.copy()
        bad[bad.size - 5] ^= 0xFF  # last chunk's payload tail
        with pytest.raises(IntegrityError):
            decompress_chunked(ChunkedStream.from_bytes(bad))

    def test_requires_one_bound(self, rng):
        data = _walk(rng, 1000, np.float32)
        with pytest.raises(InvalidInputError):
            compress_chunked(data)
        with pytest.raises(InvalidInputError):
            compress_chunked(data, rel=1e-3, abs=0.1)
