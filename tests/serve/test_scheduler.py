"""Scheduler: backpressure, priority lanes, micro-batching, shutdown."""

import threading
import time

import pytest

from repro.serve import PoolClosed, QueueFull, Scheduler, WorkerCrash, WorkerPool
from repro.serve.pool import CancelledError, register_task

_FLAKY = {"crashes_left": 0}
_FLAKY_LOCK = threading.Lock()


@register_task("sched_test.flaky")
def _flaky(arg):
    with _FLAKY_LOCK:
        if _FLAKY["crashes_left"] > 0:
            _FLAKY["crashes_left"] -= 1
            raise WorkerCrash("injected crash")
    return arg


@register_task("sched_test.maybe_fail")
def _maybe_fail(arg):
    if arg == "bad":
        raise ValueError("poisoned item")
    return arg


@pytest.fixture
def pool():
    p = WorkerPool(nworkers=1, backend="thread", warmup=False)
    p.wait_ready(10.0)
    yield p
    p.shutdown(wait=False)


def _occupy(pool, sched, seconds=0.3):
    """Park a task on the pool's single worker and wait until it holds it."""
    blocker = sched.submit("pool.sleep", seconds, priority="bulk", batchable=False)
    deadline = time.perf_counter() + 5.0
    while time.perf_counter() < deadline:
        if sched.queue_depth == 0 and sched._inflight >= 1:
            return blocker
        time.sleep(0.005)
    raise AssertionError("blocker never reached the worker")


class TestBackpressure:
    def test_queue_full_raises(self, pool):
        sched = Scheduler(pool, max_pending=2, max_inflight=1, batch_wait_s=0.0)
        try:
            blocker = _occupy(pool, sched)
            f1 = sched.submit("pool.echo", 1, batchable=False)
            f2 = sched.submit("pool.echo", 2, batchable=False)
            with pytest.raises(QueueFull):
                sched.submit("pool.echo", 3, batchable=False)
            assert sched.stats.counter("scheduler.rejected").value == 1
            # queued work still completes once the blocker finishes
            assert blocker.result(10) == 0.3
            assert f1.result(10) == 1 and f2.result(10) == 2
            # capacity freed: submission works again
            assert sched.submit("pool.echo", 4, batchable=False).result(10) == 4
        finally:
            sched.shutdown(cancel_pending=True)

    def test_priority_validation(self, pool):
        sched = Scheduler(pool)
        try:
            with pytest.raises(ValueError, match="priority"):
                sched.submit("pool.echo", 1, priority="urgent")
        finally:
            sched.shutdown()

    def test_config_validation(self, pool):
        with pytest.raises(ValueError):
            Scheduler(pool, max_pending=0)
        with pytest.raises(ValueError):
            Scheduler(pool, batch_max=0)


class TestPriorityLanes:
    def test_interactive_overtakes_queued_bulk(self, pool):
        """With the worker busy, an interactive request submitted AFTER
        two bulk requests completes before both of them."""
        sched = Scheduler(pool, max_inflight=1, batch_wait_s=0.0)
        order = []
        lock = threading.Lock()

        def track(tag):
            def cb(_f):
                with lock:
                    order.append(tag)
            return cb

        try:
            blocker = _occupy(pool, sched)
            b0 = sched.submit("pool.echo", "b0", priority="bulk", batchable=False)
            b0.add_done_callback(track("b0"))
            b1 = sched.submit("pool.echo", "b1", priority="bulk", batchable=False)
            b1.add_done_callback(track("b1"))
            i0 = sched.submit("pool.echo", "i0", priority="interactive", batchable=False)
            i0.add_done_callback(track("i0"))
            for f in (blocker, b0, b1, i0):
                f.result(10)
            assert order == ["i0", "b0", "b1"]
        finally:
            sched.shutdown()

    def test_latency_recorded_per_lane(self, pool):
        sched = Scheduler(pool)
        try:
            sched.submit("pool.echo", 1, priority="interactive").result(10)
            sched.submit("pool.echo", 2, priority="bulk").result(10)
            snap = sched.stats.snapshot()
            assert snap["histograms"]["scheduler.latency.interactive_s"]["count"] == 1
            assert snap["histograms"]["scheduler.latency.bulk_s"]["count"] == 1
        finally:
            sched.shutdown()


class TestBatching:
    def test_small_requests_coalesce(self, pool):
        sched = Scheduler(pool, max_inflight=1, batch_max=8, batch_wait_s=0.25)
        try:
            blocker = _occupy(pool, sched)  # hold the worker so peers queue up
            futures = [sched.submit("pool.echo", i, nbytes=8) for i in range(4)]
            blocker.result(10)
            assert [f.result(10) for f in futures] == [0, 1, 2, 3]
            assert sched.stats.counter("scheduler.batches").value >= 1
            assert sched.stats.counter("scheduler.batched_requests").value >= 2
            # one dispatch covered several requests
            assert (
                sched.stats.counter("scheduler.dispatches").value
                < sched.stats.counter("scheduler.completed").value
            )
        finally:
            sched.shutdown()

    def test_lone_request_flushes_on_timeout(self, pool):
        # A batchable request with no peers must not wait forever.
        sched = Scheduler(pool, batch_max=8, batch_wait_s=0.05)
        try:
            t0 = time.perf_counter()
            assert sched.submit("pool.echo", 42, nbytes=8).result(10) == 42
            assert time.perf_counter() - t0 < 5.0
        finally:
            sched.shutdown()

    def test_large_requests_never_batch(self, pool):
        sched = Scheduler(pool, batch_bytes=100, batch_wait_s=0.25, max_inflight=1)
        try:
            blocker = _occupy(pool, sched)
            futures = [
                sched.submit("pool.echo", i, nbytes=1000) for i in range(3)
            ]
            blocker.result(10)
            assert [f.result(10) for f in futures] == [0, 1, 2]
            assert sched.stats.counter("scheduler.batches").value == 0
        finally:
            sched.shutdown()

    def test_one_bad_item_does_not_sink_its_batch(self, pool):
        sched = Scheduler(pool, max_inflight=1, batch_max=8, batch_wait_s=0.25)
        try:
            blocker = _occupy(pool, sched)
            good0 = sched.submit("sched_test.maybe_fail", "a", nbytes=8)
            bad = sched.submit("sched_test.maybe_fail", "bad", nbytes=8)
            good1 = sched.submit("sched_test.maybe_fail", "c", nbytes=8)
            blocker.result(10)
            assert good0.result(10) == "a"
            with pytest.raises(ValueError, match="poisoned"):
                bad.result(10)
            assert good1.result(10) == "c"
            assert sched.stats.counter("scheduler.batches").value >= 1
        finally:
            sched.shutdown()


class TestCrashResubmission:
    def test_request_survives_worker_crash(self):
        pool = WorkerPool(nworkers=2, backend="thread", warmup=False)
        sched = Scheduler(pool)
        try:
            with _FLAKY_LOCK:
                _FLAKY["crashes_left"] = 1
            assert sched.submit("sched_test.flaky", "kept").result(10) == "kept"
            assert pool.stats.counter("pool.resubmissions").value == 1
        finally:
            sched.shutdown()
            pool.shutdown()


class TestShutdown:
    def test_shutdown_with_inflight_work_never_deadlocks(self, pool):
        """Acceptance: shutdown returns promptly with queued + in-flight
        requests outstanding."""
        sched = Scheduler(pool, max_inflight=1, batch_wait_s=0.0)
        blocker = _occupy(pool, sched, seconds=0.3)
        pending = [
            sched.submit("pool.sleep", 0.3, batchable=False) for _ in range(4)
        ]
        t0 = time.perf_counter()
        sched.shutdown(wait=True, cancel_pending=True, timeout=10.0)
        assert time.perf_counter() - t0 < 10.0
        assert blocker.result(10) == 0.3  # in-flight work ran to completion
        for f in pending:
            assert isinstance(f.exception(10), CancelledError)

    def test_drain_shutdown_completes_pending(self, pool):
        sched = Scheduler(pool, batch_wait_s=0.0)
        futures = [sched.submit("pool.echo", i, batchable=False) for i in range(5)]
        sched.shutdown(wait=True, cancel_pending=False, timeout=10.0)
        assert [f.result(10) for f in futures] == list(range(5))

    def test_submit_after_shutdown_raises(self, pool):
        sched = Scheduler(pool)
        sched.shutdown()
        with pytest.raises(PoolClosed):
            sched.submit("pool.echo", 1)

    def test_context_manager(self, pool):
        with Scheduler(pool) as sched:
            assert sched.submit("pool.echo", 9).result(10) == 9
