"""Behavioral chaos harness: injector determinism and campaign oracles.

The heavyweight acceptance campaign (500 requests, every fault enabled)
runs in CI's ``chaos-smoke`` job via ``repro chaoscheck``; the campaign
here is sized for the unit suite but exercises the same oracles.
"""

import json

import numpy as np
import pytest

from repro.faults.chaos import (
    FAULT_KINDS,
    ChaosConfig,
    ChaosWorkerPool,
    SimulatedCrash,
    _corrupt_result,
)
from repro.faults.chaoscheck import ChaosCheckConfig, run_chaoscheck
from repro.serve.pool import WorkerCrash, WorkerPool, register_task


@register_task("chaostest.echo")
def _echo(arg):
    return arg


class TestChaosConfig:
    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError, match="hang_rate"):
            ChaosConfig(hang_rate=-0.1)

    def test_rejects_rates_summing_past_one(self):
        with pytest.raises(ValueError, match="sum"):
            ChaosConfig(hang_rate=0.5, crash_rate=0.4, slow_rate=0.2)

    def test_total_rate(self):
        cfg = ChaosConfig(hang_rate=0.1, stall_rate=0.2)
        assert cfg.total_rate == pytest.approx(0.3)
        assert len(cfg.rates()) == len(FAULT_KINDS)


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self):
        cfg = ChaosConfig(seed=42, hang_rate=0.1, crash_rate=0.2,
                          slow_rate=0.2, corrupt_rate=0.1, stall_rate=0.1)
        a = ChaosWorkerPool(object(), cfg)
        b = ChaosWorkerPool(object(), cfg)
        draws_a = [a._draw() for _ in range(200)]
        draws_b = [b._draw() for _ in range(200)]
        assert draws_a == draws_b
        kinds = {k for k, _ in draws_a if k is not None}
        assert kinds == set(FAULT_KINDS)  # all faults occur at these rates

    def test_different_seed_different_schedule(self):
        base = dict(hang_rate=0.1, crash_rate=0.2, slow_rate=0.2,
                    corrupt_rate=0.1, stall_rate=0.1)
        a = ChaosWorkerPool(object(), ChaosConfig(seed=1, **base))
        b = ChaosWorkerPool(object(), ChaosConfig(seed=2, **base))
        assert [a._draw() for _ in range(100)] != [b._draw() for _ in range(100)]


class TestCorruptResult:
    def test_flips_bits_deterministically(self):
        out = np.arange(256, dtype=np.uint8)
        dam1 = _corrupt_result(out, seed=7, flips=8)
        dam2 = _corrupt_result(out, seed=7, flips=8)
        assert not np.array_equal(dam1, out)
        assert np.array_equal(dam1, dam2)
        assert np.array_equal(out, np.arange(256, dtype=np.uint8))  # copy, not in place

    def test_only_uint8_results_are_touched(self):
        floats = np.ones(64, dtype=np.float32)
        assert _corrupt_result(floats, seed=0, flips=8) is floats
        assert _corrupt_result("not an array", seed=0, flips=8) == "not an array"
        assert _corrupt_result(np.array([], dtype=np.uint8), seed=0, flips=8).size == 0

    def test_simulated_crash_is_a_worker_crash(self):
        # SimulatedCrash must trigger the pool's *real* crash machinery
        assert issubclass(SimulatedCrash, WorkerCrash)


class TestChaosWorkerPool:
    def test_slow_faults_still_succeed(self):
        cfg = ChaosConfig(seed=0, slow_rate=1.0, slow_s=0.01)
        with WorkerPool(nworkers=2, warmup=False) as pool:
            pool.wait_ready()
            chaos = ChaosWorkerPool(pool, cfg)
            futs = [chaos.submit("chaostest.echo", i) for i in range(10)]
            assert [f.result(timeout=10.0) for f in futs] == list(range(10))
            assert pool.stats.counter("chaos.injected.slow").value == 10
            assert len(chaos.events) == 10

    def test_stall_faults_deliver_late_but_correct(self):
        cfg = ChaosConfig(seed=0, stall_rate=1.0, stall_s=0.02)
        with WorkerPool(nworkers=2, warmup=False) as pool:
            pool.wait_ready()
            chaos = ChaosWorkerPool(pool, cfg)
            futs = [chaos.submit("chaostest.echo", i) for i in range(5)]
            assert [f.result(timeout=10.0) for f in futs] == list(range(5))
            assert pool.stats.counter("chaos.injected.stall").value == 5

    def test_crash_faults_kill_real_workers(self):
        cfg = ChaosConfig(seed=0, crash_rate=1.0)
        with WorkerPool(nworkers=1, warmup=False, max_respawns=50) as pool:
            pool.wait_ready()
            chaos = ChaosWorkerPool(pool, cfg)
            with pytest.raises(WorkerCrash):
                chaos.submit("chaostest.echo", 1).result(timeout=30.0)
            assert pool.stats.counter("pool.worker_crashes").value >= 1
            # the pool respawned: a non-chaotic submit still works
            assert pool.submit("chaostest.echo", 2).result(timeout=30.0) == 2

    def test_delegates_everything_else(self):
        cfg = ChaosConfig(seed=0)
        with WorkerPool(nworkers=1, warmup=False) as pool:
            chaos = ChaosWorkerPool(pool, cfg)
            assert chaos.stats is pool.stats
            assert chaos.wait_ready(timeout=10.0)


class TestChaosCampaign:
    def test_small_campaign_upholds_the_contract(self):
        """~30% fault rate, tight deadline: every request must succeed,
        degrade correctly, or fail classified -- zero violations."""
        cfg = ChaosCheckConfig(
            seed=7,
            requests=120,
            deadline_s=0.5,
            workers=2,
            hang_rate=0.02,
            crash_rate=0.08,
            slow_rate=0.10,
            corrupt_rate=0.05,
            stall_rate=0.05,
        )
        result = run_chaoscheck(cfg)
        assert result.ok, result.summary()
        assert result.requests == 120
        errs = sum(result.classified_errors.values())
        assert result.successes + errs == result.requests
        assert sum(result.injected.values()) > 0  # chaos actually fired
        assert "PASS" in result.summary()
        parsed = json.loads(result.to_json())
        assert parsed["ok"] is True and parsed["requests"] == 120

    def test_campaign_is_clean_without_chaos(self):
        cfg = ChaosCheckConfig(
            seed=1, requests=40, deadline_s=5.0,
            hang_rate=0.0, crash_rate=0.0, slow_rate=0.0,
            corrupt_rate=0.0, stall_rate=0.0,
        )
        result = run_chaoscheck(cfg)
        assert result.ok, result.summary()
        assert result.successes == 40  # nothing injected, nothing fails
        assert result.raw_successes == 0
        assert result.injected == {}

    def test_time_budget_stops_early(self):
        cfg = ChaosCheckConfig(seed=2, requests=10_000, deadline_s=0.5,
                               time_budget_s=0.5)
        result = run_chaoscheck(cfg)
        assert result.ok, result.summary()
        assert 0 < result.requests < 10_000
