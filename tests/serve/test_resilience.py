"""Resilience layer: deadlines, watchdog, retries, breakers, degradation.

Every test here is deterministic: faults are injected via registered
tasks with explicit counters (thread backend shares memory) or via the
clock-injected circuit breaker -- no sleeps longer than the watchdog
needs, no reliance on scheduling luck.
"""

import random
import threading
import time

import numpy as np
import pytest

from repro.core.errors import IntegrityError, InvalidInputError
from repro.serve import (
    CompressionService,
    Deadline,
    DeadlineExceeded,
    Scheduler,
    WaitTimeout,
    WorkerPool,
    WorkerTimeout,
    is_raw,
    raw_from_bytes,
    raw_to_bytes,
)
from repro.serve.pool import PoolFuture, ThreadBackend, register_task
from repro.serve.resilience import (
    BreakerConfig,
    CircuitBreaker,
    CorruptResult,
    ResilientRouter,
    RetryPolicy,
    TaskFailure,
    classify_error,
    is_classified,
)

# -- injectable tasks (import time, so fork workers inherit them) -----------

_STATE = {"fail_left": 0}
_STATE_LOCK = threading.Lock()


@register_task("res.sleep")
def _sleep_task(arg):
    time.sleep(float(arg))
    return "slept"


@register_task("res.flaky_integrity")
def _flaky_integrity(arg):
    """Raise IntegrityError (retryable transport corruption) N times."""
    with _STATE_LOCK:
        if _STATE["fail_left"] > 0:
            _STATE["fail_left"] -= 1
            raise IntegrityError("synthetic transport corruption")
    return arg


@register_task("res.boom")
def _boom(arg):
    raise RuntimeError("deterministic failure on every tier")


@register_task("res.echo2")
def _echo2(arg):
    return arg


@register_task("res.bad_value")
def _bad_value(arg):
    raise ValueError("client mistake, not an infrastructure fault")


@register_task("res.pool_poison")
def _pool_poison(arg):
    """Fail in pool workers, succeed on the router's inline runner --
    lets a test open the pool breaker while inline stays healthy."""
    if threading.current_thread().name != "serve-inline-runner":
        raise RuntimeError("poisoned everywhere but the inline runner")
    return arg


# ---------------------------------------------------------------------------
# Deadline primitives
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(10.0)
        assert 9.0 < d.remaining() <= 10.0
        assert not d.expired

    def test_expired(self):
        d = Deadline(time.perf_counter() - 1.0)
        assert d.expired and d.remaining() < 0

    def test_after_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)

    def test_earliest(self):
        from repro.serve.deadline import earliest

        a, b = Deadline.after(1.0), Deadline.after(2.0)
        assert earliest(a, b) is a
        assert earliest(None, b, None) is b
        assert earliest(None, None) is None


# ---------------------------------------------------------------------------
# Typed wait timeout + cancel (future hardening)
# ---------------------------------------------------------------------------

class TestWaitTimeoutAndCancel:
    def test_result_timeout_is_typed(self):
        f = PoolFuture()
        with pytest.raises(WaitTimeout):
            f.result(timeout=0.01)
        assert issubclass(WaitTimeout, TimeoutError)  # drop-in for callers

    def test_exception_timeout_is_typed(self):
        f = PoolFuture()
        with pytest.raises(WaitTimeout):
            f.exception(timeout=0.01)

    def test_cancelled_task_skipped_by_dispatcher(self):
        with WorkerPool(nworkers=1, warmup=False) as pool:
            pool.wait_ready()
            blocker = pool.submit("res.sleep", 0.3)
            victim = pool.submit("res.echo2", "never")
            after = pool.submit("res.echo2", "runs")
            assert victim.cancel()
            assert blocker.result(timeout=5.0) == "slept"
            assert after.result(timeout=5.0) == "runs"
            assert victim.cancelled()
            from repro.serve.pool import CancelledError

            with pytest.raises(CancelledError):
                victim.result(timeout=0.1)


# ---------------------------------------------------------------------------
# Event-driven readiness
# ---------------------------------------------------------------------------

class TestWaitReady:
    def test_wait_ready_returns_promptly(self):
        with WorkerPool(nworkers=2, warmup=False) as pool:
            t0 = time.perf_counter()
            assert pool.wait_ready(timeout=10.0)
            # condition-variable wakeup, not a poll loop: workers that
            # start in milliseconds must not cost a poll interval
            assert time.perf_counter() - t0 < 5.0
            # already-ready pool answers immediately
            t1 = time.perf_counter()
            assert pool.wait_ready(timeout=10.0)
            assert time.perf_counter() - t1 < 0.05


# ---------------------------------------------------------------------------
# Deadline shedding (queue) and watchdog (in-flight)
# ---------------------------------------------------------------------------

class TestDeadlineShedding:
    def test_pool_sheds_expired_queued_task(self):
        with WorkerPool(nworkers=1, warmup=False) as pool:
            pool.wait_ready()
            blocker = pool.submit("res.sleep", 0.3)
            doomed = pool.submit("res.echo2", "x", deadline=Deadline.after(0.05))
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            assert blocker.result(timeout=5.0) == "slept"
            assert pool.stats.counter("pool.deadline_sheds").value >= 1

    def test_scheduler_sheds_expired_request(self):
        with WorkerPool(nworkers=1, warmup=False) as pool:
            pool.wait_ready()
            sched = Scheduler(pool, batch_wait_s=0.0)
            blocker = sched.submit("res.sleep", 0.3, batchable=False)
            doomed = sched.submit(
                "res.echo2", "x", batchable=False, deadline=Deadline.after(0.05)
            )
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            assert blocker.result(timeout=5.0) == "slept"
            assert sched.stats.counter("scheduler.deadline_sheds").value >= 1
            sched.shutdown()

    def test_expired_pending_shed_even_with_no_idle_worker(self):
        # the shed must not wait for a worker to come free: a fully
        # stalled pool still honors deadlines
        with WorkerPool(nworkers=1, warmup=False) as pool:
            pool.wait_ready()
            t0 = time.perf_counter()
            blocker = pool.submit("res.sleep", 0.5)
            doomed = pool.submit("res.echo2", "x", deadline=Deadline.after(0.05))
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            # failed while the only worker was still busy, not at dispatch
            assert time.perf_counter() - t0 < 0.4
            assert blocker.result(timeout=5.0) == "slept"

    def test_no_deadline_means_no_shedding(self):
        with WorkerPool(nworkers=1, warmup=False) as pool:
            pool.wait_ready()
            futs = [pool.submit("res.echo2", i) for i in range(20)]
            assert [f.result(timeout=10.0) for f in futs] == list(range(20))


class TestWatchdog:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_watchdog_reclaims_overrunning_worker(self, backend):
        with WorkerPool(nworkers=1, backend=backend, warmup=False) as pool:
            assert pool.wait_ready(timeout=30.0)
            stuck = pool.submit("res.sleep", 5.0, deadline=Deadline.after(0.15))
            with pytest.raises(WorkerTimeout):
                stuck.result(timeout=10.0)
            assert pool.stats.counter("pool.watchdog_kills").value == 1
            # the pool respawned a replacement and keeps serving
            assert pool.submit("res.echo2", "alive").result(timeout=30.0) == "alive"

    def test_watchdog_does_not_touch_tasks_within_deadline(self):
        with WorkerPool(nworkers=1, warmup=False) as pool:
            pool.wait_ready()
            ok = pool.submit("res.sleep", 0.1, deadline=Deadline.after(5.0))
            assert ok.result(timeout=10.0) == "slept"
            assert pool.stats.counter("pool.watchdog_kills").value == 0


class _WedgedHandle:
    """A worker handle that stays alive but never reports ready."""

    def __init__(self):
        self._alive = True

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self._alive = False


class _WedgingBackend:
    """First spawn wedges silently; every later spawn is a real worker.

    Models the fork-from-multithreaded-process hazard where a child
    deadlocks on an inherited lock before sending its ready message.
    """

    name = "thread"

    def __init__(self):
        self._real = ThreadBackend()
        self._wedge_next = True

    def make_queue(self):
        return self._real.make_queue()

    def spawn(self, wid, inq, outq, warmup, transport=None):
        if self._wedge_next:
            self._wedge_next = False
            return _WedgedHandle()
        return self._real.spawn(wid, inq, outq, warmup, transport)


class TestSpawnWatchdog:
    def test_wedged_spawn_is_replaced(self):
        # the first worker never becomes ready; the spawn watchdog must
        # terminate it and spawn a replacement that serves traffic
        with WorkerPool(
            nworkers=1, backend=_WedgingBackend(), warmup=False,
            spawn_timeout_s=0.1,
        ) as pool:
            fut = pool.submit("res.echo2", "through")
            assert fut.result(timeout=10.0) == "through"
            assert pool.stats.counter("pool.spawn_timeouts").value == 1

    def test_healthy_spawn_not_charged(self):
        with WorkerPool(nworkers=2, warmup=False, spawn_timeout_s=5.0) as pool:
            assert pool.wait_ready(timeout=10.0)
            assert pool.submit("res.echo2", "ok").result(timeout=10.0) == "ok"
            assert pool.stats.counter("pool.spawn_timeouts").value == 0


# ---------------------------------------------------------------------------
# Retry policy (pure math)
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        pol = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                          backoff_max_s=0.3, jitter=0.0)
        rng = random.Random(0)
        assert pol.backoff_s(1, rng) == pytest.approx(0.1)
        assert pol.backoff_s(2, rng) == pytest.approx(0.2)
        assert pol.backoff_s(3, rng) == pytest.approx(0.3)  # capped
        assert pol.backoff_s(9, rng) == pytest.approx(0.3)

    def test_jitter_is_bounded_and_deterministic(self):
        pol = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        a = [pol.backoff_s(1, random.Random(7)) for _ in range(3)]
        assert a[0] == a[1] == a[2]  # same seed, same delay
        for s in range(100):
            d = pol.backoff_s(1, random.Random(s))
            assert 0.05 - 1e-12 <= d <= 0.15 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# Circuit breaker (clock-injected, no sleeping)
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def make(self, **kw):
        clock = {"t": 0.0}
        cfg = BreakerConfig(window=8, min_volume=4, failure_threshold=0.5,
                            reset_timeout_s=1.0, **kw)
        br = CircuitBreaker("t", cfg, clock=lambda: clock["t"])
        return br, clock

    def test_trips_at_threshold_with_min_volume(self):
        br, _ = self.make()
        br.record_failure()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # min_volume not reached
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()

    def test_successes_keep_it_closed(self):
        br, _ = self.make()
        for _ in range(20):
            br.record_success()
            assert br.allow()
        br.record_failure()
        assert br.state == "closed"  # 1/8 failure rate in window

    def test_half_open_probe_then_close(self):
        br, clock = self.make()
        for _ in range(4):
            br.record_failure()
        assert br.state == "open"
        clock["t"] += 1.1  # past reset timeout
        assert br.allow()  # the probe
        assert br.state == "half_open"
        assert not br.allow()  # only one probe admitted
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_half_open_failure_reopens(self):
        br, clock = self.make()
        for _ in range(4):
            br.record_failure()
        clock["t"] += 1.1
        assert br.allow()
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        clock["t"] += 1.1
        assert br.allow()  # recovery can be probed again

    def test_slow_success_counts_as_failure(self):
        br, _ = self.make(latency_threshold_s=0.1)
        for _ in range(4):
            br.record_success(duration_s=0.5)
        assert br.state == "open"


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class TestTaxonomy:
    def test_classified_types(self):
        assert is_classified(DeadlineExceeded("x"))
        assert is_classified(WorkerTimeout("x"))
        assert is_classified(CorruptResult("x"))
        assert is_classified(TaskFailure("x"))
        assert is_classified(IntegrityError("x"))
        assert not is_classified(RuntimeError("x"))

    def test_labels(self):
        assert classify_error(DeadlineExceeded("x")) == "deadline"
        assert classify_error(CorruptResult("x")) == "corrupt_result"
        assert classify_error(InvalidInputError("x")) == "client"
        assert classify_error(KeyError("x")) == "unclassified"


# ---------------------------------------------------------------------------
# Router integration (real pool + scheduler underneath)
# ---------------------------------------------------------------------------

def _router(**router_kw):
    pool = WorkerPool(nworkers=1, warmup=False)
    pool.wait_ready()
    sched = Scheduler(pool, batch_wait_s=0.0)
    router = ResilientRouter(sched, **router_kw)
    return pool, sched, router


class TestRouterRetry:
    def test_transient_failure_retried_to_success(self):
        pool, sched, router = _router(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.005, jitter=0.0)
        )
        try:
            with _STATE_LOCK:
                _STATE["fail_left"] = 2
            fut = router.submit("res.flaky_integrity", "ok",
                                deadline=Deadline.after(10.0), batchable=False)
            assert fut.result(timeout=10.0) == "ok"
            assert router.stats.counter("resilience.retries").value == 2
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()

    def test_corrupt_result_detected_and_retried(self):
        pool, sched, router = _router(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.005, jitter=0.0)
        )
        try:
            fails = {"left": 1}
            lock = threading.Lock()

            def validator(out):
                with lock:
                    if fails["left"] > 0:
                        fails["left"] -= 1
                        raise IntegrityError("synthetic corrupt ship-back")

            fut = router.submit("res.echo2", "v", deadline=Deadline.after(10.0),
                                batchable=False, validator=validator)
            assert fut.result(timeout=10.0) == "v"
            assert router.stats.counter("resilience.corrupt_results").value == 1
            assert router.stats.counter("resilience.retries").value == 1
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()

    def test_unclassified_failure_wrapped_terminal(self):
        pool, sched, router = _router()
        try:
            fut = router.submit("res.boom", None, batchable=False)
            # res.boom raises RuntimeError -> not retryable, degrades through
            # inline, then fails wrapped in a classified type
            with pytest.raises(TaskFailure):
                fut.result(timeout=10.0)
            assert router.stats.counter("resilience.retries").value == 0
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()

    def test_client_error_delivered_verbatim(self):
        pool, sched, router = _router()
        try:
            fut = router.submit("res.bad_value", None, batchable=False)
            with pytest.raises(ValueError, match="client mistake"):
                fut.result(timeout=10.0)
            # no retry, no degradation, no breaker charge
            assert router.stats.counter("resilience.retries").value == 0
            assert router.stats.counter("resilience.degraded.inline").value == 0
            assert router.breakers["pool"].state == "closed"
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()

    def test_retry_wait_span_recorded(self):
        from repro.obs import Tracer
        from repro.obs.trace import TraceContext

        pool, sched, router = _router(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.005, jitter=0.0)
        )
        tracer = Tracer()
        try:
            with _STATE_LOCK:
                _STATE["fail_left"] = 1
            span = tracer.begin("request")
            fut = router.submit(
                "res.flaky_integrity", "ok", deadline=Deadline.after(10.0),
                batchable=False, trace=TraceContext(tracer, span),
            )
            assert fut.result(timeout=10.0) == "ok"
            tracer.end(span)
            names = set()

            def walk(spans):
                for s in spans:
                    names.add(s.name)
                    walk(s.children)

            walk(tracer.roots())
            assert "resilience.retry_wait" in names
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()


class TestRouterDegradation:
    def test_degrades_to_inline_then_raw(self):
        pool, sched, router = _router(
            retry=RetryPolicy(max_attempts=1)  # no same-tier retries
        )
        try:
            data = np.arange(64, dtype=np.float32)
            fut = router.submit(
                "res.boom", None, batchable=False,
                raw_fallback=lambda: raw_to_bytes(data),
            )
            out = fut.result(timeout=10.0)
            assert is_raw(out)
            assert np.array_equal(raw_from_bytes(out), data)
            assert router.stats.counter("resilience.degraded.inline").value == 1
            assert router.stats.counter("resilience.raw_fallbacks").value == 1
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()

    def test_breaker_trips_and_routes_around_pool(self):
        pool, sched, router = _router(
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(window=4, min_volume=2, failure_threshold=0.5,
                                  reset_timeout_s=60.0),
        )
        try:
            # fails in pool workers, succeeds on the inline runner: the
            # requests still get answers while the pool breaker charges up
            for i in range(3):
                got = router.submit("res.pool_poison", i, batchable=False)
                assert got.result(timeout=10.0) == i
            assert router.breakers["pool"].state == "open"
            assert router.breakers["inline"].state == "closed"
            assert (
                router.stats.counter("resilience.breaker.pool.open").value >= 1
            )
            # next request never touches the pool tier: served inline
            before = router.stats.counter("scheduler.submitted").value
            assert router.submit("res.echo2", 7, batchable=False).result(10.0) == 7
            assert router.stats.counter("scheduler.submitted").value == before
            assert router.stats.counter("resilience.inline_tasks").value >= 4
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()

    def test_expired_deadline_shed_before_dispatch(self):
        pool, sched, router = _router()
        try:
            d = Deadline(time.perf_counter() - 0.1)  # already expired
            fut = router.submit("res.echo2", 1, deadline=d, batchable=False)
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=5.0)
            assert router.stats.counter("resilience.deadline_sheds").value == 1
        finally:
            router.close()
            sched.shutdown()
            pool.shutdown()


# ---------------------------------------------------------------------------
# Raw passthrough container
# ---------------------------------------------------------------------------

class TestRawContainer:
    def test_round_trip_exact(self):
        rng = np.random.default_rng(0)
        for arr in (
            rng.standard_normal((32, 17), dtype=np.float32),
            rng.standard_normal(1000).astype(np.float64),
            np.arange(7, dtype=np.int32),
        ):
            buf = raw_to_bytes(arr)
            assert is_raw(buf)
            back = raw_from_bytes(buf)
            assert back.shape == arr.shape and back.dtype == arr.dtype
            assert np.array_equal(back, arr)

    def test_not_raw_for_other_buffers(self):
        assert not is_raw(np.zeros(4, dtype=np.uint8))
        assert not is_raw(np.frombuffer(b"CSZ2", dtype=np.uint8))

    def test_crc_detects_payload_corruption(self):
        buf = raw_to_bytes(np.arange(100, dtype=np.float32))
        dam = buf.copy()
        dam[-5] ^= 0xFF
        with pytest.raises(IntegrityError):
            raw_from_bytes(dam)

    def test_manifest_flags_raw_entries(self):
        from repro.serve.chunked import ChunkEntry, ChunkManifest

        m = ChunkManifest(
            shape=(8,), dtype="float32", mode="outlier", predictor_ndim=1,
            block=32, group_blocks=16, eb_abs=1e-3, axis="flat",
            entries=(
                ChunkEntry(nelems=4, nbytes=10, crc32=1),
                ChunkEntry(nelems=4, nbytes=10, crc32=2, raw=True),
            ),
        )
        again = ChunkManifest.from_json(m.to_json())
        assert [e.raw for e in again.entries] == [False, True]
        # the raw key is omitted for compressed chunks: golden containers
        # from before the resilience layer parse (and re-serialize) unchanged
        assert '"raw"' not in m.to_json().split("},")[0]


# ---------------------------------------------------------------------------
# Service-level degradation (the full chain, end to end)
# ---------------------------------------------------------------------------

class TestServiceDegradation:
    def test_total_backend_failure_serves_raw_and_decodes_exactly(self):
        from repro.faults.chaos import ChaosConfig, ChaosWorkerPool

        chaos = ChaosConfig(seed=0, crash_rate=1.0)  # every pool task dies
        with CompressionService(
            workers=1, warmup=False, deadline_s=30.0,
            degrade_inline=False,  # force the chain past inline to raw
            retry_max_attempts=1,
            max_respawns=1000,
            pool_wrapper=lambda p: ChaosWorkerPool(p, chaos),
        ) as svc:
            rng = np.random.default_rng(1)
            data = rng.standard_normal(4096, dtype=np.float32)
            blob = svc.compress(data, rel=1e-3).result(timeout=60.0)
            assert is_raw(np.asarray(blob))
            assert svc.stats.counter("resilience.raw_fallbacks").value >= 1
            # raw is decodable by the same service... but the pool is
            # still chaotic, so decode degrades too; with resilience off
            # the chain, verify via the direct helper instead
            assert np.array_equal(raw_from_bytes(np.asarray(blob)), data)

    def test_rescued_tier_output_bit_identical_to_monolithic(self):
        import repro

        with _STATE_LOCK:
            _STATE["fail_left"] = 0
        with CompressionService(workers=2, warmup=False, deadline_s=30.0) as svc:
            rng = np.random.default_rng(2)
            data = rng.standard_normal(8192, dtype=np.float32)
            blob = svc.compress(data, rel=1e-3).result(timeout=60.0)
            mono = repro.compress(data, rel=1e-3)
            assert np.array_equal(np.asarray(blob), mono)
            recon = svc.decompress(blob).result(timeout=60.0)
            assert np.array_equal(recon, repro.decompress(mono))

    def test_inline_rescue_is_bit_identical(self):
        """Even when every pool task dies and the inline tier answers,
        the bytes match the monolithic codec exactly."""
        import repro
        from repro.faults.chaos import ChaosConfig, ChaosWorkerPool

        chaos = ChaosConfig(seed=0, crash_rate=1.0)
        with CompressionService(
            workers=1, warmup=False, deadline_s=30.0,
            retry_max_attempts=1, max_respawns=1000,
            pool_wrapper=lambda p: ChaosWorkerPool(p, chaos),
        ) as svc:
            rng = np.random.default_rng(3)
            data = rng.standard_normal(4096, dtype=np.float32)
            blob = svc.compress(data, rel=1e-3).result(timeout=60.0)
            assert not is_raw(np.asarray(blob))  # inline tier compressed it
            assert np.array_equal(np.asarray(blob), repro.compress(data, rel=1e-3))
            assert svc.stats.counter("resilience.degraded.inline").value >= 1

    def test_resilience_counters_exported(self):
        from repro.obs.export import prometheus_text

        with _STATE_LOCK:
            _STATE["fail_left"] = 1
        with CompressionService(workers=1, warmup=False, deadline_s=30.0,
                                retry_backoff_s=0.005) as svc:
            fut = svc.router.submit("res.flaky_integrity", "x",
                                    deadline=Deadline.after(10.0), batchable=False)
            assert fut.result(timeout=10.0) == "x"
            snap = svc.stats_snapshot()
            assert snap["counters"]["resilience.retries"] == 1
            text = prometheus_text(svc.stats)
            assert "resilience_retries" in text.replace(".", "_") or \
                   "resilience" in text
