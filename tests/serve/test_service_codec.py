"""ServiceConfig.codec: routing requests through non-default plugins."""

import numpy as np
import pytest

from repro import codecs
from repro.core.errors import InvalidInputError
from repro.serve.service import CompressionService, ServiceConfig


@pytest.fixture
def field(rng):
    return np.cumsum(rng.normal(size=6_000)).astype(np.float32).reshape(60, 100)


class TestCodecRouting:
    @pytest.mark.parametrize("codec", ["cusz", "fzgpu", "cuszx"])
    def test_bounded_codec_roundtrip(self, field, codec):
        with CompressionService(workers=2, codec=codec) as svc:
            blob = svc.compress(field, rel=1e-3).result(timeout=30)
            assert codecs.sniff(blob) == codec
            recon = svc.decompress(blob).result(timeout=30)
        assert recon.shape == field.shape
        assert recon.dtype == field.dtype
        eb = 1e-3 * float(field.max() - field.min())
        err = np.abs(recon.astype(np.float64) - field.astype(np.float64)).max()
        assert err <= eb * (1 + 1e-6)

    def test_fixed_rate_codec_with_opts(self, field):
        cfg = ServiceConfig(
            workers=1, codec="cuzfp", codec_opts=(("rate", 16.0),)
        )
        with CompressionService(cfg) as svc:
            blob = svc.compress(field).result(timeout=30)
            recon = svc.decompress(blob).result(timeout=30)
        assert recon.shape == field.shape
        assert recon.dtype == field.dtype
        # rate 16 on float32: ~2x, well below raw
        assert blob.size < field.nbytes

    def test_abs_bound_rides_through(self, field):
        with CompressionService(workers=1, codec="fzgpu") as svc:
            blob = svc.compress(field, abs=1e-2).result(timeout=30)
            recon = svc.decompress(blob).result(timeout=30)
        assert np.abs(recon.astype(np.float64) - field.astype(np.float64)).max() <= 1e-2 * (1 + 1e-6)

    def test_default_service_decodes_foreign_streams(self, field):
        """Decoding always sniffs: a cuszp2 service decodes any
        registered plugin's stream."""
        stream = bytes(codecs.encode(field, "fzgpu", abs=1e-3))
        with CompressionService(workers=1) as svc:
            recon = svc.decompress(stream).result(timeout=30)
        assert recon.shape == field.shape

    def test_codec_service_still_decodes_csz2(self, field):
        """And the reverse: a plugin-configured service decodes core
        CSZ2 streams produced elsewhere."""
        from repro.core import compress as core_compress

        stream = core_compress(field, rel=1e-3)
        with CompressionService(workers=1, codec="cusz") as svc:
            recon = svc.decompress(stream).result(timeout=30)
        assert recon.shape == field.shape


class TestCodecValidation:
    def test_unknown_codec_fails_fast(self, field):
        with CompressionService(workers=1, codec="nope") as svc:
            with pytest.raises(InvalidInputError, match="unknown codec"):
                svc.compress(field, rel=1e-3)

    def test_bad_codec_opt_fails_fast(self, field):
        with CompressionService(
            workers=1, codec="cusz", codec_opts=(("bogus", 1),)
        ) as svc:
            with pytest.raises(InvalidInputError, match="has no option"):
                svc.compress(field, rel=1e-3)

    def test_bounded_codec_requires_exactly_one_bound(self, field):
        with CompressionService(workers=1, codec="cusz") as svc:
            with pytest.raises(InvalidInputError, match="exactly one"):
                svc.compress(field)
            with pytest.raises(InvalidInputError, match="exactly one"):
                svc.compress(field, rel=1e-3, abs=1e-3)

    def test_metrics_account_codec_requests(self, field):
        with CompressionService(workers=1, codec="cuszx") as svc:
            svc.compress(field, rel=1e-3).result(timeout=30)
            snap = svc.stats_snapshot()
        assert snap["counters"]["service.requests"] >= 1
        assert snap["counters"]["service.bytes_in"] >= field.nbytes
