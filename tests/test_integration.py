"""Cross-module integration scenarios: dataset -> codec -> archive ->
random access -> metrics -> performance model, exercised together the way
a downstream user would chain them."""

import numpy as np
import pytest

from repro import (
    DatasetArchive,
    TileAccessor,
    compress,
    decompress,
)
from repro.core.archive import pack
from repro.datasets import get_dataset
from repro.gpusim import A100_40GB, Artifacts
from repro.gpusim import pipelines as P
from repro.metrics import (
    check_error_bound,
    isosurface_preservation,
    psnr,
    ratio_for,
    ssim,
)


class TestScientificWorkflow:
    """An in-situ analysis pipeline over a simulated RTM campaign."""

    @pytest.fixture(scope="class")
    def campaign(self):
        ds = get_dataset("RTM")
        return {f.name: f.generate(ds.dtype) for f in ds.fields}

    @pytest.fixture(scope="class")
    def archive(self, campaign):
        return DatasetArchive(pack(campaign, 1e-3, mode="outlier"))

    def test_archive_compresses_campaign(self, campaign, archive):
        raw = sum(v.nbytes for v in campaign.values())
        assert raw / archive.nbytes > 5

    def test_bounded_extraction_per_field(self, campaign, archive):
        for name, original in campaign.items():
            recon = archive.extract(name).reshape(original.shape)
            rng = float(original.max() - original.min())
            assert check_error_bound(original, recon, 1e-3 * rng), name

    def test_quality_metrics_on_extraction(self, campaign, archive):
        original = campaign["P3000"]
        recon = archive.extract("P3000").reshape(original.shape)
        assert psnr(original, recon) > 45
        assert ssim(original, recon) > 0.97
        assert isosurface_preservation(original, recon) > 0.9

    def test_random_access_within_archive(self, campaign, archive):
        ra = archive.accessor("P2000")
        full = archive.extract("P2000").reshape(-1)
        segment = ra.decode_range(1000, 9000)
        assert np.array_equal(segment, full[1000:9000])

    def test_performance_model_on_archive_streams(self, campaign, archive):
        art = Artifacts.from_cuszp2_stream(
            campaign["P3000"].reshape(-1), archive.stream("P3000")
        )
        t = P.cuszp2_compression(art, A100_40GB).end_to_end_throughput(
            A100_40GB, art.input_bytes
        )
        assert t > 50  # small fields pay launch overhead but remain sane


class TestCheckpointRestartScenario:
    """Compressed checkpoints: write, crash, restart from a timestep."""

    def test_timestep_evolution(self, rng):
        state = np.cumsum(rng.normal(size=20_000)).astype(np.float32)
        checkpoints = []
        for step in range(5):
            state = state + 0.05 * np.roll(state, 1) - 0.05 * state  # toy dynamics
            checkpoints.append(compress(state, rel=1e-4, mode="outlier"))
        # Restart from checkpoint 3: decompressed state drives the same
        # dynamics within the bound.
        restored = decompress(checkpoints[3])
        rngv = float(restored.max() - restored.min())
        advanced = restored + 0.05 * np.roll(restored, 1) - 0.05 * restored
        direct = decompress(checkpoints[4])
        # One step from a bounded restart stays within a few bounds of the
        # step from the exact state.
        assert np.abs(advanced - direct).max() < 10 * 1e-4 * rngv


class TestCrossCompressorAgreement:
    """The Section V-D identity: every FLE compressor reconstructs
    identically at equal bound; only sizes differ."""

    def test_reconstruction_identity_and_size_ordering(self, rng):
        from repro.baselines import FZGPU, CuSZp
        from repro.core.quantize import ErrorBound

        data = np.cumsum(rng.normal(size=30_000)).astype(np.float32)
        eb = ErrorBound.relative(1e-3)

        ours_o = compress(data, rel=1e-3, mode="outlier")
        ours_p = compress(data, rel=1e-3, mode="plain")
        cuszp = CuSZp(eb).compress(data)
        fz = FZGPU(eb).compress(data)

        r_ref = decompress(ours_o)
        assert np.array_equal(decompress(ours_p), r_ref)
        assert np.array_equal(CuSZp(eb).decompress(cuszp), r_ref)
        assert np.array_equal(FZGPU(eb).decompress(fz), r_ref)

        # Size ordering on smooth data: outlier < plain == cuszp.
        assert ours_o.size < ours_p.size
        assert ours_p.size == cuszp.size

    def test_ratio_for_matches_manual(self, rng):
        data = rng.normal(size=1000).astype(np.float32)
        buf = compress(data, rel=1e-2)
        assert ratio_for(data, buf) == data.nbytes / buf.size


class TestMultiDimWorkflow:
    def test_volume_roundtrip_with_tile_queries(self, rng):
        vol = np.cumsum(np.cumsum(rng.normal(size=(20, 24, 28)), 0), 1).astype(np.float32)
        buf = compress(vol, rel=1e-3, predictor_ndim=3, block=64)
        full = decompress(buf)
        ta = TileAccessor(buf)
        # Region query through the tile accessor == slice of full decode.
        assert np.array_equal(ta.decode_region((3, 5, 7), (15, 20, 25)), full[3:15, 5:20, 7:25])

    def test_1d_and_3d_reconstructions_close(self, rng):
        # Different predictors, same bound: reconstructions differ but both
        # stay within the bound of the original (hence within 2eb of each
        # other).
        vol = np.cumsum(rng.normal(size=(16, 16, 64)), axis=2).astype(np.float32)
        r1 = decompress(compress(vol, rel=1e-3)).reshape(vol.shape)
        r3 = decompress(compress(vol, rel=1e-3, predictor_ndim=3, block=64))
        eb = 1e-3 * (vol.max() - vol.min())
        assert np.abs(r1 - r3).max() <= 2 * eb * (1 + 1e-6)


class TestVMReferenceAgreementAtScale:
    def test_vm_kernel_agrees_on_real_dataset_field(self):
        from repro.gpusim.kernels import compress_on_vm

        ds = get_dataset("QMCPack")
        data = ds.fields[0].generate(ds.dtype).reshape(-1)[:8192]
        ref = compress(data, rel=1e-3, mode="outlier")
        vm = compress_on_vm(data, 1e-3, mode="outlier", blocks_per_tb=8, resident=12, seed=42)
        assert np.array_equal(vm, ref)
