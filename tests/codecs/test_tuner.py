"""The per-field auto-tuner: sampling, candidate trials, and the
acceptance bar -- a tuned mixed archive beats every single fixed codec."""

import numpy as np
import pytest

from repro import codecs
from repro.codecs.tuner import (
    DEFAULT_CANDIDATES,
    Candidate,
    autotune,
    autotune_compress,
    autotune_pack,
)
from repro.core.archive import DatasetArchive, pack_streams
from repro.core.errors import InvalidInputError
from tests.helpers import seeded_rng


def _mixed_fields():
    """A deliberately heterogeneous archive: each field favors a
    different codec family, and every field is small enough (<= 16384
    elems) that the tuner trials candidates on the whole field."""
    rng = seeded_rng(0x70E)
    n = 8_000
    return {
        "constant": np.full(n, 3.25, dtype=np.float32),
        "walk": np.cumsum(rng.normal(size=n)).astype(np.float32),
        "steps": np.repeat(
            rng.normal(size=n // 400).astype(np.float32), 400
        ),
        "noise": rng.normal(size=n).astype(np.float32),
        "sparse": np.where(
            rng.random(n) < 0.01, rng.normal(size=n), 0.0
        ).astype(np.float32),
    }


class TestAutotune:
    def test_record_shape_and_roundtrip(self, rng):
        data = np.cumsum(rng.normal(size=6_000)).astype(np.float32)
        stream, rec = autotune_compress(data, rel=1e-3)
        assert rec.codec in {c.codec for c in DEFAULT_CANDIDATES}
        assert rec.eb_abs > 0
        assert rec.total_elems == data.size
        assert rec.sampled_whole  # 6000 elems < whole-field threshold
        assert rec.trials
        assert rec.full_ratio == pytest.approx(data.nbytes / stream.size)
        recon = codecs.decode(stream)
        assert recon.shape == data.shape
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= rec.eb_abs * (1 + 1e-6)
        assert "<== chosen" in rec.describe()

    def test_deterministic(self, rng):
        data = np.cumsum(rng.normal(size=4_000)).astype(np.float32)
        s1, r1 = autotune_compress(data, rel=1e-3)
        s2, r2 = autotune_compress(data, rel=1e-3)
        assert bytes(s1) == bytes(s2)
        assert r1.codec == r2.codec and r1.opts == r2.opts

    def test_constant_field_picks_a_high_ratio_codec(self):
        data = np.full(8_000, 1.5, dtype=np.float32)
        rec = autotune(data, abs=1e-3)
        assert rec.sample_ratio > 20  # far beyond what any mediocre pick gets

    def test_bound_required_exactly_once(self, rng):
        data = rng.normal(size=256).astype(np.float32)
        with pytest.raises(InvalidInputError, match="exactly one"):
            autotune(data)
        with pytest.raises(InvalidInputError, match="exactly one"):
            autotune(data, rel=1e-3, abs=1e-3)

    def test_hostile_input_is_classified(self):
        with pytest.raises(InvalidInputError):
            autotune(np.empty(0, np.float32), rel=1e-3)
        with pytest.raises(InvalidInputError):
            autotune(np.array([np.nan], dtype=np.float32), rel=1e-3)

    def test_custom_candidates_restrict_the_choice(self, rng):
        data = np.cumsum(rng.normal(size=2_000)).astype(np.float32)
        rec = autotune(data, rel=1e-3, candidates=(Candidate("cuszx"),))
        assert rec.codec == "cuszx"

    def test_unbounded_candidates_are_skipped_not_fatal(self, rng):
        data = np.cumsum(rng.normal(size=2_000)).astype(np.float32)
        rec = autotune(
            data, rel=1e-3,
            candidates=(Candidate("cuzfp"), Candidate("cuszx")),
        )
        assert rec.codec == "cuszx"
        skipped = [t for t in rec.trials if t.ratio is None]
        assert any(t.codec == "cuzfp" for t in skipped)

    def test_records_span_when_tracing(self, rng):
        from repro.obs import Tracer, activate, deactivate

        data = np.cumsum(rng.normal(size=1_000)).astype(np.float32)
        tracer = Tracer()
        activate(tracer)
        try:
            autotune(data, rel=1e-3)
        finally:
            deactivate()
        spans = tracer.find("codecs.autotune")
        assert spans and spans[0].attrs["codec"]


class TestAcceptance:
    """ISSUE acceptance: on a mixed multi-field archive the tuner's
    aggregate ratio is >= the best single fixed codec's."""

    def test_tuned_archive_beats_every_fixed_codec(self):
        fields = _mixed_fields()
        rel = 1e-3
        tuned_buf, records = autotune_pack(fields, rel=rel)
        assert set(records) == set(fields)
        # at least two distinct codecs chosen: the archive is genuinely mixed
        assert len({r.codec for r in records.values()}) >= 2

        total_raw = sum(d.nbytes for d in fields.values())
        tuned_ratio = total_raw / tuned_buf.size
        fixed_names = [
            n for n in codecs.codec_names() if codecs.resolve(n).bounded
        ]
        for name in fixed_names:
            fixed_buf = pack_streams(
                {k: codecs.encode(d, name, rel=rel) for k, d in fields.items()}
            )
            fixed_ratio = total_raw / fixed_buf.size
            assert tuned_ratio >= fixed_ratio * (1 - 1e-9), (
                f"tuned ratio {tuned_ratio:.3f} < fixed {name} {fixed_ratio:.3f}"
            )

    def test_tuned_archive_extracts_within_bound(self):
        fields = _mixed_fields()
        rel = 1e-3
        tuned_buf, records = autotune_pack(fields, rel=rel)
        archive = DatasetArchive(tuned_buf)
        assert set(archive.names) == set(fields)
        for name, data in fields.items():
            recon = archive.extract(name)
            assert recon.dtype == data.dtype
            assert recon.size == data.size
            err = np.abs(
                recon.reshape(-1).astype(np.float64)
                - data.reshape(-1).astype(np.float64)
            ).max()
            assert err <= records[name].eb_abs * (1 + 1e-6), name
