"""Regression tests for the divergent-contract bugs the plugin registry
unified away.  Each test fails on the pre-fix code:

* ``FZGPU.decompress`` returned *flat* arrays for multi-dimensional
  inputs (both predictor modes), unlike every other codec here.
* module-level ``fzgpu.compress`` / ``cuszp.compress`` raised a raw
  ``TypeError`` when neither ``rel`` nor ``abs`` was given, instead of a
  classified :class:`InvalidInputError`.
* ``CuSZx`` stored constant-block means as float32 even for float64
  fields, silently breaking tight absolute bounds.
"""

import struct

import numpy as np
import pytest

from repro.baselines import cuszp, fzgpu
from repro.baselines.fzgpu import FZGPU, HEADER_FMT, HEADER_SIZE
from repro.baselines.hybrid import CuSZx
from repro.core.errors import InvalidInputError
from repro.core.quantize import ErrorBound


class TestFZGPUShapeRestoration:
    """Satellite 1: multi-dim inputs must decode back to their shape."""

    @pytest.mark.parametrize("shape", [(40, 50), (10, 12, 14)])
    def test_blockwise_mode_restores_shape(self, rng, shape):
        data = rng.normal(size=shape).astype(np.float32)
        codec = FZGPU(ErrorBound.absolute(1e-3))
        recon = codec.decompress(codec.compress(data))
        assert recon.shape == data.shape
        assert recon.dtype == data.dtype
        assert np.abs(recon - data).max() <= 1e-3 * (1 + 1e-6)

    def test_3d_lorenzo_mode_restores_shape(self, rng):
        data = np.cumsum(
            rng.normal(size=10 * 12 * 14).astype(np.float32)
        ).reshape(10, 12, 14)
        codec = FZGPU(ErrorBound.absolute(1e-2), predictor_ndim=3)
        recon = codec.decompress(codec.compress(data))
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 1e-2 * (1 + 1e-6)

    def test_1d_unchanged(self, rng):
        data = rng.normal(size=500).astype(np.float64)
        codec = FZGPU(ErrorBound.absolute(1e-6))
        recon = codec.decompress(codec.compress(data))
        assert recon.shape == data.shape

    def test_v1_streams_still_decode_flat(self, rng):
        """Back-compat: pre-fix streams carry 0 in the header's high
        byte and must keep decoding to a flat array."""
        data = rng.normal(size=(20, 30)).astype(np.float32)
        codec = FZGPU(ErrorBound.absolute(1e-3))
        stream = codec.compress(data)
        fields = list(struct.unpack(HEADER_FMT, stream[:HEADER_SIZE].tobytes()))
        assert fields[1] == 2  # version
        assert fields[3] >> 8 == 2  # original ndim rides in the high byte
        fields[1] = 1  # rewrite as a v1 header: version 1, ndim byte clear
        fields[3] &= 0xFF
        v1 = stream.copy()
        v1[:HEADER_SIZE] = np.frombuffer(
            struct.pack(HEADER_FMT, *fields), dtype=np.uint8
        )
        recon = codec.decompress(v1)
        assert recon.shape == (data.size,)
        assert np.abs(recon - data.reshape(-1)).max() <= 1e-3 * (1 + 1e-6)


class TestModuleLevelBoundErrors:
    """Satellite 2: a missing/double bound is a classified error, not a
    raw TypeError from ErrorBound's constructor."""

    @pytest.mark.parametrize("mod", [fzgpu, cuszp], ids=["fzgpu", "cuszp"])
    def test_no_bound_is_classified(self, mod, rng):
        data = rng.normal(size=64).astype(np.float32)
        with pytest.raises(InvalidInputError, match="exactly one"):
            mod.compress(data)

    @pytest.mark.parametrize("mod", [fzgpu, cuszp], ids=["fzgpu", "cuszp"])
    def test_double_bound_is_classified(self, mod, rng):
        data = rng.normal(size=64).astype(np.float32)
        with pytest.raises(InvalidInputError, match="exactly one"):
            mod.compress(data, rel=1e-3, abs=1e-3)


class TestCuSZxF64Means:
    """Constant-block means must be stored in the input dtype: float32
    storage pushes an f64 field's constant blocks past a tight bound."""

    def test_constant_f64_blocks_respect_tiny_bound(self):
        value = 1.0 + 1e-9  # not representable in float32
        data = np.full(1024, value, dtype=np.float64)
        eb = 1e-12
        codec = CuSZx(ErrorBound.absolute(eb))
        recon = codec.decompress(codec.compress(data))
        assert recon.dtype == np.float64
        assert np.abs(recon - data).max() <= eb * (1 + 1e-6)

    def test_f32_unchanged(self, rng):
        data = np.repeat(rng.normal(size=8).astype(np.float32), 256)
        codec = CuSZx(ErrorBound.absolute(1e-4))
        recon = codec.decompress(codec.compress(data))
        assert recon.dtype == np.float32
        assert np.abs(recon - data).max() <= 1e-4 * (1 + 1e-6)
