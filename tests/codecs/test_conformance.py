"""Plugin conformance: every registered codec honors the uniform
contract -- one parametrized suite, so a new plugin is conformance-tested
by the act of registering it."""

import numpy as np
import pytest

from repro import codecs
from repro.core.errors import InvalidInputError, StreamFormatError
from tests.helpers import seeded_rng

ALL_CODECS = codecs.codec_names()
BOUNDED = [n for n in ALL_CODECS if codecs.resolve(n).bounded]


def _field(dtype, ndim):
    rng = seeded_rng(0xC0DEC + ndim)
    shape = {1: (3_000,), 2: (48, 40), 3: (12, 14, 16)}[ndim]
    n = int(np.prod(shape))
    return np.cumsum(rng.normal(size=n)).astype(dtype).reshape(shape)


@pytest.mark.parametrize("codec", ALL_CODECS)
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("ndim", [1, 2, 3])
class TestRoundTrip:
    def test_roundtrip_preserves_dtype_shape_and_bound(self, codec, dtype, ndim):
        plugin = codecs.resolve(codec)
        data = _field(dtype, ndim)
        opts = {"abs": 1e-2} if plugin.bounded else {}
        stream = plugin.compress(data, **opts)
        recon = plugin.decompress(stream)
        assert recon.dtype == data.dtype
        assert recon.shape == data.shape
        if plugin.bounded:
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
            assert err <= 1e-2 * (1 + 1e-6), f"{codec}: max error {err}"

    def test_compression_is_deterministic(self, codec, dtype, ndim):
        plugin = codecs.resolve(codec)
        data = _field(dtype, ndim)
        opts = {"rel": 1e-3} if plugin.bounded else {}
        a = plugin.compress(data, **opts)
        b = plugin.compress(data, **opts)
        assert bytes(a) == bytes(b)

    def test_decode_dispatches_without_the_codec_name(self, codec, dtype, ndim):
        plugin = codecs.resolve(codec)
        data = _field(dtype, ndim)
        opts = {"abs": 1e-2} if plugin.bounded else {}
        stream = plugin.compress(data, **opts)
        sniffed = codecs.decode(stream)
        assert sniffed.tobytes() == plugin.decompress(stream).tobytes()
        assert sniffed.shape == data.shape


@pytest.mark.parametrize("codec", ALL_CODECS)
class TestClassifiedErrors:
    def _opts(self, codec):
        return {"abs": 1e-3} if codecs.resolve(codec).bounded else {}

    def test_empty_input(self, codec):
        with pytest.raises(InvalidInputError, match="empty"):
            codecs.encode(np.empty(0, np.float32), codec, **self._opts(codec))

    def test_nonfinite_input(self, codec):
        data = np.array([1.0, np.nan, 3.0], dtype=np.float32)
        with pytest.raises(InvalidInputError, match="finite"):
            codecs.encode(data, codec, **self._opts(codec))
        data = np.array([1.0, np.inf, 3.0], dtype=np.float64)
        with pytest.raises(InvalidInputError, match="finite"):
            codecs.encode(data, codec, **self._opts(codec))

    def test_non_array_input(self, codec):
        with pytest.raises(InvalidInputError, match="numpy array"):
            codecs.encode([1.0, 2.0, 3.0], codec, **self._opts(codec))

    def test_wrong_dtype(self, codec):
        with pytest.raises(InvalidInputError, match="float32 or float64"):
            codecs.encode(np.arange(16, dtype=np.int32), codec, **self._opts(codec))

    def test_too_many_dims(self, codec):
        data = np.zeros((2, 3, 4, 5), dtype=np.float32)
        with pytest.raises(InvalidInputError, match="dimensions"):
            codecs.encode(data, codec, **self._opts(codec))

    def test_bound_required_exactly_once(self, codec):
        plugin = codecs.resolve(codec)
        if not plugin.bounded:
            pytest.skip(f"{codec} is fixed-rate")
        data = np.ones(64, dtype=np.float32)
        with pytest.raises(InvalidInputError, match="exactly one"):
            plugin.compress(data)
        with pytest.raises(InvalidInputError, match="exactly one"):
            plugin.compress(data, rel=1e-3, abs=1e-3)

    def test_garbage_stream_is_classified(self, codec):
        plugin = codecs.resolve(codec)
        with pytest.raises(StreamFormatError):
            plugin.decompress(b"garbage that is not a stream at all")

    def test_truncated_stream_is_classified(self, codec):
        plugin = codecs.resolve(codec)
        data = _field(np.float32, 1)
        opts = {"abs": 1e-2} if plugin.bounded else {}
        stream = np.asarray(plugin.compress(data, **opts))
        for frac in (0.25, 0.6, 0.95):
            cut = stream[: max(1, int(stream.size * frac))].copy()
            try:
                out = plugin.decompress(cut)
            except (StreamFormatError, InvalidInputError):
                continue
            # a decode that survives truncation must at least keep the
            # contract's dtype (it can only happen when the cut falls
            # past the last needed byte)
            assert out.dtype == data.dtype


@pytest.mark.parametrize("codec", BOUNDED)
def test_rel_and_abs_bounds_agree(codec):
    """A rel bound equals the abs bound it resolves to (same stream)."""
    from repro.core.quantize import ErrorBound, validate_input

    data = _field(np.float32, 1)
    rel = 1e-3
    eb_abs = ErrorBound.relative(rel).resolve(validate_input(data))
    a = codecs.encode(data, codec, rel=rel)
    b = codecs.encode(data, codec, abs=eb_abs)
    ra, rb = codecs.decode(a), codecs.decode(b)
    assert np.array_equal(ra, rb)


def test_every_plugin_declares_identity():
    for name, plugin in codecs.list_plugins().items():
        assert plugin.name == name
        assert plugin.description
        assert 1 <= plugin.max_ndim <= 3
