"""Registry mechanics: registration, resolution, sniffing, envelopes,
and the per-plugin option schema."""

import numpy as np
import pytest

from repro import codecs
from repro.codecs.plugin import (
    ENVELOPE_MAGIC,
    CompressorPlugin,
    OptionSpec,
    is_envelope,
    register,
    unregister,
)
from repro.core.errors import InvalidInputError, StreamFormatError


@pytest.fixture
def walk_f32(rng):
    return np.cumsum(rng.normal(size=4_000)).astype(np.float32)


class TestRegistry:
    def test_builtin_names_and_default(self):
        names = codecs.codec_names()
        assert names[0] == codecs.DEFAULT_CODEC == "cuszp2"
        assert set(names) == {
            "cuszp2", "cuszp", "fzgpu", "cuzfp", "cusz", "cuszx", "mgard"
        }

    def test_resolve_unknown_is_classified(self):
        with pytest.raises(InvalidInputError, match="unknown codec"):
            codecs.resolve("nope")
        with pytest.raises(InvalidInputError):
            codecs.encode(np.zeros(4, np.float32), "nope", rel=1e-3)

    def test_resolve_passes_plugin_instances_through(self):
        plugin = codecs.resolve("cusz")
        assert codecs.resolve(plugin) is plugin

    def test_duplicate_registration_is_a_programming_error(self):
        class Dummy(CompressorPlugin):
            name = "cusz"  # collides with a builtin

        with pytest.raises(ValueError, match="already registered"):
            register(Dummy())

    def test_register_replace_and_unregister(self):
        class Dummy(CompressorPlugin):
            name = "test-dummy"
            description = "registry test plugin"

        try:
            register(Dummy())
            assert "test-dummy" in codecs.codec_names()
            register(Dummy(), replace=True)  # no error with replace
        finally:
            unregister("test-dummy")
        assert "test-dummy" not in codecs.codec_names()

    def test_register_rejects_bad_names(self):
        class Anon(CompressorPlugin):
            name = ""

        with pytest.raises(ValueError, match="non-empty ASCII"):
            register(Anon())


class TestSniffAndDecode:
    def test_sniff_raw_and_enveloped_streams(self, walk_f32):
        assert codecs.sniff(codecs.encode(walk_f32, "cuszp2", rel=1e-3)) == "cuszp2"
        assert codecs.sniff(codecs.encode(walk_f32, "fzgpu", rel=1e-3)) == "fzgpu"
        # hybrids wrap in the shape envelope, which carries the name
        cusz = codecs.encode(walk_f32, "cusz", rel=1e-3)
        assert is_envelope(cusz)
        assert codecs.sniff(cusz) == "cusz"

    def test_cuszp_streams_sniff_as_the_core_codec(self, walk_f32):
        # cuSZp emits core CSZ2 streams; sniffing resolves them to the
        # first-registered (core) plugin, which decodes them fine
        stream = codecs.encode(walk_f32, "cuszp", rel=1e-3)
        assert codecs.sniff(stream) == "cuszp2"
        recon = codecs.decode(stream)
        assert recon.shape == walk_f32.shape

    def test_decode_garbage_is_classified(self):
        with pytest.raises(StreamFormatError, match="unrecognized"):
            codecs.decode(b"\x00\x01\x02\x03 definitely not a stream")

    def test_decode_forced_codec_mismatch(self, walk_f32):
        stream = codecs.encode(walk_f32, "fzgpu", rel=1e-3)
        with pytest.raises(StreamFormatError):
            codecs.decode(stream, codec="cuszp2")

    def test_sniff_unknown_returns_none(self):
        assert codecs.sniff(b"????????") is None
        assert codecs.sniff(b"") is None


class TestEnvelope:
    def test_envelope_truncation_is_classified(self, walk_f32):
        stream = codecs.encode(walk_f32, "cusz", rel=1e-3)
        for cut in (len(ENVELOPE_MAGIC), len(ENVELOPE_MAGIC) + 3, stream.size - 5):
            with pytest.raises(StreamFormatError):
                codecs.decode(stream[:cut].copy())

    def test_envelope_wrong_producer_name(self, walk_f32):
        stream = codecs.encode(walk_f32, "cusz", rel=1e-3)
        with pytest.raises(StreamFormatError, match="produced by codec"):
            codecs.resolve("mgard").decompress(stream)

    def test_envelope_preserves_multidim_shape(self, rng):
        data = rng.normal(size=(6, 7, 8)).astype(np.float32)
        for name in ("cusz", "cuszx", "mgard"):
            recon = codecs.decode(codecs.encode(data, name, abs=1e-2))
            assert recon.shape == data.shape
            assert recon.dtype == data.dtype


class TestOptionSchema:
    def test_unknown_option(self):
        with pytest.raises(InvalidInputError, match="has no option"):
            codecs.encode(np.zeros(8, np.float32), "cuszp2", rel=1e-3, bogus=1)

    def test_missing_and_double_bound(self):
        plugin = codecs.resolve("cuszp2")
        with pytest.raises(InvalidInputError, match="exactly one"):
            plugin.validate_options({})
        with pytest.raises(InvalidInputError, match="exactly one"):
            plugin.validate_options({"rel": 1e-3, "abs": 1e-3})

    def test_choice_violation(self):
        with pytest.raises(InvalidInputError, match="must be one of"):
            codecs.resolve("cuszp2").validate_options({"rel": 1e-3, "mode": "turbo"})

    def test_minimum_violation(self):
        with pytest.raises(InvalidInputError, match=">="):
            codecs.resolve("cuzfp").validate_options({"rate": 0.25})

    def test_bool_is_not_a_number(self):
        with pytest.raises(InvalidInputError, match="bool"):
            codecs.resolve("cuzfp").validate_options({"rate": True})

    def test_string_coercion_for_cli_values(self):
        out = codecs.resolve("cuszp2").validate_options(
            {"rel": "1e-3", "block": "64"}
        )
        assert out["rel"] == 1e-3 and out["block"] == 64

    def test_non_integer_float_rejected_for_int_option(self):
        with pytest.raises(InvalidInputError):
            codecs.resolve("cuszp2").validate_options({"rel": 1e-3, "block": 32.5})

    def test_defaults_injected(self):
        out = codecs.resolve("cuszp2").validate_options({"rel": 1e-3})
        assert out["mode"] == "outlier"
        assert out["block"] >= 1

    def test_option_spec_exposed_for_introspection(self):
        for plugin in codecs.list_plugins().values():
            for opt in plugin.options.values():
                assert isinstance(opt, OptionSpec)
                assert opt.type in (int, float, str)
                assert opt.doc
