"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one paper table/figure: it runs the
experiment (timed via pytest-benchmark), writes the paper-style rendering
to ``benchmarks/results/<name>.txt``, prints it, and asserts the paper's
qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    def _save(result):
        (results_dir / f"{result.name}.txt").write_text(result.text + "\n")
        print("\n" + result.text)
        return result

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment with a single timed round (the experiments
    are deterministic; wall-clock codec benches use normal rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
