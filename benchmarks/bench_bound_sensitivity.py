"""E-EB: Section V-B -- throughput as a function of the error bound.

Paper: "since larger error bounds create more zero data blocks, increasing
error bounds (e.g. from REL 1E-4 to REL 1E-2) in CUSZP2 leads to higher
throughput."  The mechanism is emergent in this reproduction: a larger
bound yields a higher measured ratio (and more zero blocks), hence fewer
payload bytes to produce, store, and (on the way back) parse.
"""


from repro.gpusim import A100_40GB
from repro.harness import run_field, simulate
from repro.harness import tables


RELS = (1e-4, 1e-3, 1e-2)
FIELDS = [("RTM", "P2000"), ("CESM-ATM", "FLDS"), ("NYX", "temperature"), ("JetIn", "jet")]


def _sweep():
    rows = []
    per_field = {}
    for ds, field in FIELDS:
        series = []
        for rel in RELS:
            run = run_field(ds, field, "cuszp2-o", rel)
            series.append(
                (
                    rel,
                    run.ratio,
                    run.artifacts.zero_block_fraction,
                    simulate(run, A100_40GB, "compress"),
                    simulate(run, A100_40GB, "decompress"),
                )
            )
            rows.append((f"{ds}/{field}", *series[-1]))
        per_field[(ds, field)] = series
    return rows, per_field


def test_larger_bounds_run_faster(benchmark, results_dir):
    rows, per_field = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = tables.series_table(
        "Sec. V-B: throughput vs error bound (CUSZP2-O)",
        rows,
        ("field", "REL", "ratio", "zero frac", "compress GB/s", "decompress GB/s"),
    )
    (results_dir / "bound_sensitivity.txt").write_text(text + "\n")
    print("\n" + text)

    for (ds, field), series in per_field.items():
        rels, ratios, zfracs, comps, decomps = zip(*series)
        # Ratio and zero-block fraction grow with the bound...
        assert ratios[0] < ratios[1] < ratios[2], (ds, field)
        assert zfracs[0] <= zfracs[1] <= zfracs[2], (ds, field)
        # ...and so does throughput, in both directions.
        assert comps[0] < comps[2], (ds, field)
        assert decomps[0] < decomps[2], (ds, field)
