"""E-F2: Fig. 2 -- kernel vs end-to-end throughput of CPU-GPU hybrids.

Paper reference points (A100): kernel throughput up to 177.48 GB/s while
end-to-end spans only 0.32 (MGARD compression) to 1.79 GB/s (cuSZx
compression).
"""

from repro.harness import experiments as E

from conftest import run_once


def test_fig02_kernel_vs_end_to_end(benchmark, save_result):
    result = run_once(benchmark, E.fig02_hybrid_gap)
    save_result(result)
    d = result.data

    # End-to-end throughput collapses to the paper's 0.3..2.5 GB/s band.
    e2e = [d[f]["e2e_comp"] for f in ("cusz", "cuszx", "mgard")]
    assert all(0.2 < v < 2.5 for v in e2e), e2e

    # Kernel throughput stays 1-2 orders of magnitude higher.
    for fam in ("cusz", "cuszx", "mgard"):
        assert d[fam]["kernel_comp"] / d[fam]["e2e_comp"] > 20, fam

    # Orderings: cuSZx is the fastest hybrid end-to-end, MGARD the slowest
    # (paper: 1.79 vs 0.32 GB/s).
    assert d["cuszx"]["e2e_comp"] > d["cusz"]["e2e_comp"] > d["mgard"]["e2e_comp"]
