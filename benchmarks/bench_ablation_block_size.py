"""E-BS: Section V-A -- the block-size design choice.

Paper: "The block size for CUSZP2 is 32 since we find this is the overall
best choice in balancing high throughput and high compression ratio."
This bench sweeps L in {8, 16, 32, 64, 128} and asserts that trade-off
shape: small blocks pay per-block overhead (offset bytes + bookkeeping),
large blocks dilute the fixed length and slow the per-thread encode loop.
"""

from repro.harness import experiments as E

from conftest import run_once


def test_block_size_tradeoff(benchmark, save_result):
    result = run_once(benchmark, E.ablation_block_size)
    save_result(result)
    d = result.data

    balance = {L: v["ratio"] * v["throughput"] for L, v in d.items()}
    # 32 maximizes the ratio-throughput balance (the paper's choice).
    assert max(balance, key=balance.get) == 32

    # The trade-off's two cliffs exist:
    assert d[128]["ratio"] < d[32]["ratio"]  # big blocks hurt ratio
    assert d[8]["throughput"] < d[32]["throughput"]  # small blocks hurt speed

    # Ratio is unimodal-ish: both extremes below the middle.
    mid = max(d[16]["ratio"], d[32]["ratio"])
    assert d[8]["ratio"] < mid or d[128]["ratio"] < mid
