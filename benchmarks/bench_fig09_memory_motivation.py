"""E-F9: Fig. 9 -- memory throughput of existing pure-GPU compressors.

Paper reference (A100, RTM P3000): 159.95 GB/s (FZ-GPU) to 397.26 GB/s
(cuSZp), all far below the 1555 GB/s DRAM capacity -- the motivation for
cuSZp2's vectorized memory accesses.
"""

from repro.gpusim import A100_40GB
from repro.harness import experiments as E

from conftest import run_once


def test_fig09_motivating_underutilization(benchmark, save_result):
    result = run_once(benchmark, E.fig09_memory_motivation)
    save_result(result)
    series = result.data["series"]

    # All existing pure-GPU compressors sit far below the DRAM peak.
    for name, value in series.items():
        assert value < 0.35 * A100_40GB.dram_bw, name

    # cuSZp is the best of the three, FZ-GPU the worst (atomics).
    assert series["cuSZp"] > series["cuZFP"] > series["FZ-GPU"]

    # Levels land near the paper's measurements.
    assert 100 < series["FZ-GPU"] < 220
    assert 300 < series["cuSZp"] < 500
