"""E-RD: Section V-D / Observation III -- rate-distortion curves.

The paper argues cuSZp2 must have "the best rate-distortion curves among
GPU error-bounded lossy compressors": FZ-GPU, cuSZp and cuSZp2 share the
lossy step (identical distortion at equal bound), so the curve ordering is
decided purely by compressed size -- where CUSZP2-O emits the fewest bits.
This bench computes the actual curves and asserts the dominance.
"""

import numpy as np

from repro import compress as c2_compress
from repro import decompress as c2_decompress
from repro.baselines import FZGPU
from repro.core.quantize import ErrorBound
from repro.datasets import get_dataset
from repro.harness import tables
from repro.metrics import curve, dominates


RELS = (1e-1, 1e-2, 1e-3, 1e-4)


def _curves():
    data = get_dataset("CESM-ATM").field("TS").generate(np.dtype(np.float32))
    flat = data.reshape(-1)

    ours = curve(flat, lambda d, r: c2_compress(d, rel=r, mode="outlier"), c2_decompress, RELS)
    plain = curve(flat, lambda d, r: c2_compress(d, rel=r, mode="plain"), c2_decompress, RELS)

    def fz_comp(d, r):
        return FZGPU(ErrorBound.relative(r)).compress(d)

    def fz_dec(buf):
        return FZGPU(ErrorBound.relative(1e-3)).decompress(buf)

    fz = curve(flat, fz_comp, fz_dec, RELS)
    return {"CUSZP2-O": ours, "cuSZp (=CUSZP2-P)": plain, "FZ-GPU": fz}


def test_rate_distortion_dominance(benchmark, results_dir):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)

    rows = []
    for name, pts in curves.items():
        for p in pts:
            rows.append((name, p.error_bound, p.bits_per_value, p.psnr_db))
    text = tables.series_table(
        "Sec. V-D: rate-distortion on CESM-ATM TS (PSNR vs bits/value)",
        rows,
        ("compressor", "REL bound", "bits/value", "PSNR dB"),
    )
    (results_dir / "rate_distortion.txt").write_text(text + "\n")
    print("\n" + text)

    ours = curves["CUSZP2-O"]
    # Identical distortion at equal bound (shared lossy step)...
    by_bound = {p.error_bound: p.psnr_db for p in ours}
    for name in ("cuSZp (=CUSZP2-P)", "FZ-GPU"):
        for p in curves[name]:
            assert abs(by_bound[p.error_bound] - p.psnr_db) < 1e-9, name

    # ...with strictly fewer bits at every bound -> curve dominance.
    for name in ("cuSZp (=CUSZP2-P)", "FZ-GPU"):
        theirs = {p.error_bound: p.bits_per_value for p in curves[name]}
        for p in ours:
            assert p.bits_per_value <= theirs[p.error_bound] * 1.0001, (name, p.error_bound)
        assert dominates(ours, curves[name]), name
