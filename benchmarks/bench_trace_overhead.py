"""E-TRACE: cost of the instrumentation layer (engineering benchmark).

The ``repro.obs`` guard promises *zero cost when disabled*: every
``maybe_span`` call site reduces to one thread-local read plus a shared
no-op context manager.  This bench measures that promise on a Miranda
field: the same compress+decompress round trip with

* ``baseline`` -- ``maybe_span`` monkeypatched to a true no-op (as if the
  code had never been instrumented),
* ``disabled`` -- the real guard, no tracer active (the shipping default),
* ``enabled``  -- a live tracer recording every span (for context; this
  one is allowed to cost something).

Asserts the disabled guard adds <3% over the uninstrumented baseline
(min-of-N timing) and records all three into
``benchmarks/results/BENCH_trace.json``.

Run with::

    pytest benchmarks/bench_trace_overhead.py --benchmark-only
"""

import json
import time
from contextlib import nullcontext
from pathlib import Path

from repro.core import compress, decompress
from repro.datasets import get_dataset
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer, activate, deactivate

RESULTS_DIR = Path(__file__).parent / "results"

REPEATS = 7
MAX_DISABLED_OVERHEAD = 1.03

_NULL = nullcontext()


def _noop_maybe_span(name, **attrs):
    return _NULL


def _round_trip(data):
    blob = compress(data, rel=1e-3)
    recon = decompress(blob)
    return blob, recon


def _min_time(data) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        _round_trip(data)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracing_overhead(benchmark, results_dir):
    data = get_dataset("Miranda").fields[0].generate("float32")

    # baseline: rip the instrumentation out entirely
    real = obs_trace.maybe_span
    obs_trace.maybe_span = _noop_maybe_span
    try:
        _round_trip(data)  # warm caches before any timing
        baseline_s = _min_time(data)
    finally:
        obs_trace.maybe_span = real

    disabled_s = benchmark.pedantic(
        lambda: _min_time(data), rounds=1, iterations=1
    )

    tracer = Tracer()
    activate(tracer)
    try:
        enabled_s = _min_time(data)
        nspans = sum(1 for _ in _walk(tracer.roots()))
    finally:
        deactivate()

    ratio = disabled_s / baseline_s if baseline_s else float("inf")
    doc = {
        "field": "Miranda/density",
        "field_mb": round(data.nbytes / 1e6, 3),
        "repeats_min_of": REPEATS,
        "baseline_uninstrumented_s": round(baseline_s, 6),
        "disabled_guard_s": round(disabled_s, 6),
        "enabled_tracing_s": round(enabled_s, 6),
        "disabled_over_baseline": round(ratio, 4),
        "enabled_over_baseline": round(enabled_s / baseline_s, 4),
        "spans_per_enabled_run": nspans // REPEATS,
        "budget": MAX_DISABLED_OVERHEAD,
        "note": (
            "disabled_over_baseline is the cost of shipping the maybe_span "
            "call sites with no tracer active; the acceptance budget is <3%."
        ),
    }
    (results_dir / "BENCH_trace.json").write_text(json.dumps(doc, indent=2) + "\n")
    print("\n" + json.dumps(doc, indent=2))

    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing guard costs {100 * (ratio - 1):.2f}% "
        f"(budget {100 * (MAX_DISABLED_OVERHEAD - 1):.0f}%)"
    )


def _walk(roots):
    stack = list(roots)
    while stack:
        s = stack.pop()
        yield s
        stack.extend(s.children)
