"""E-F10: Fig. 10 -- SASS memory-instruction reduction from float4
vectorization (LD.E/ST.E x N  ->  LD.E.128/ST.E.128 x N/4)."""

from repro.gpusim import vectorization_reduction
from repro.harness import experiments as E

from conftest import run_once


def test_fig10_instruction_reduction(benchmark, save_result):
    result = run_once(benchmark, E.fig10_vectorization, 4096)
    save_result(result)
    # The paper's exact claim: 4x fewer memory instructions.
    assert result.data["scalar"] == 4 * result.data["vector"]
    assert vectorization_reduction(1 << 20) == 4.0
