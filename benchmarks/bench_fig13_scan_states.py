"""E-F13: Fig. 13 -- a captured moment of the decoupled-lookback scan.

The paper explains the protocol with a snapshot labelling every thread
block Finished / Looking Back / Waiting.  This bench regenerates that
snapshot from the discrete-event schedule (A100 parameters, heterogeneous
per-block work) and asserts the structural properties the figure conveys.
"""

import numpy as np

from repro.gpusim.calibration import T_FLAG_S
from repro.scan.trace import FINISHED, LOOKING_BACK, WAITING, trace_lookback



def _make_trace():
    rng = np.random.default_rng(1)
    # Per-block local work spread (compressed-length reduce of uneven data).
    work = rng.uniform(0.5e-6, 6e-6, size=64)
    return trace_lookback(work, T_FLAG_S, resident=16)


def test_fig13_state_snapshot(benchmark, results_dir):
    trace = benchmark.pedantic(_make_trace, rounds=1, iterations=1)
    t = trace.interesting_moment()
    text = (
        "== Fig. 13: decoupled-lookback thread-block states ==\n"
        + trace.render_snapshot(t)
        + "\n\n"
        + trace.render_timeline(samples=10)
    )
    (results_dir / "fig13.txt").write_text(text + "\n")
    print("\n" + text)

    # The figure's structure: multiple states coexist mid-execution...
    counts = trace.counts_at(t)
    assert sum(counts[s] > 0 for s in (WAITING, LOOKING_BACK, FINISHED)) >= 2

    # ...every block eventually finishes...
    end = float(trace.prefix_done.max()) + 1e-12
    assert trace.counts_at(end)[FINISHED] == trace.nblocks

    # ...and Finished status propagates out of launch order -- the decoupling:
    # some block finishes before a lower-id block does (TB2 finishing before
    # the chain reaches it, in the paper's example).
    finish_order = np.argsort(trace.prefix_done)
    assert not np.array_equal(finish_order, np.arange(trace.nblocks))
