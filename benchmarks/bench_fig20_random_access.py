"""E-F20: Fig. 20 -- random access to one arbitrary compressed block.

Paper reference (A100, REL 1e-4): 1010.07 GB/s average normalized
throughput ("TB-level"), ranging 793.14 (SCALE) to 1305.32 GB/s (JetIn).
Our model omits per-SM scheduling overheads the measurement includes, so
absolute numbers land higher; the TB-level claim and the sparse-datasets-
are-faster ordering are preserved (EXPERIMENTS.md discusses the gap).
"""

import numpy as np

from repro import RandomAccessor, compress, decompress
from repro.datasets import get_dataset
from repro.harness import experiments as E

from conftest import run_once


def test_fig20_random_access_throughput(benchmark, save_result):
    result = run_once(benchmark, E.fig20_random_access)
    save_result(result)
    series = result.data["series"]

    # TB-level normalized throughput on every dataset.
    for ds, v in series.items():
        assert v > 1000, ds

    # Sparse datasets (zero fast path) access fastest.
    assert series["JetIn"] == max(v for k, v in series.items() if k != "AVERAGE")


def test_fig20_functional_random_access_correct():
    """The functional counterpart: a random block decodes identically to
    full decompression for a real dataset field."""
    ds = get_dataset("RTM")
    data = ds.fields[2].generate(ds.dtype)
    buf = compress(data.reshape(-1), rel=1e-4, mode="outlier")
    full = decompress(buf)
    ra = RandomAccessor(buf)
    rng = np.random.default_rng(0)
    for idx in rng.choice(ra.nblocks, size=16, replace=False):
        lo = int(idx) * ra.block
        assert np.array_equal(ra.decode_block(int(idx)), full[lo : lo + ra.block])
