"""E-F15: Fig. 15 -- CUSZP2-O vs CUSZP2-P on the six HACC fields.

Paper reference: on the smooth position fields (xx/yy/zz) Outlier mode
achieves ~2x the ratio of Plain mode and therefore *higher* throughput
despite doing more work (e.g. xx: 380.36 O vs 315.64 P GB/s compression);
on the velocity fields the two modes are close.
"""

from repro.harness import experiments as E

from conftest import run_once


def test_fig15_outlier_vs_plain_on_hacc(benchmark, save_result):
    result = run_once(benchmark, E.fig15_hacc_fields)
    save_result(result)
    d = result.data

    for pos in ("xx", "yy", "zz"):
        # ~2x compression-ratio advantage on smooth position fields...
        assert d[pos]["cr_o"] / d[pos]["cr_p"] > 1.6, pos
        # ...which translates into higher throughput for Outlier mode.
        assert d[pos]["comp_o"] > d[pos]["comp_p"], pos
        assert d[pos]["decomp_o"] > d[pos]["decomp_p"], pos

    for vel in ("vx", "vy", "vz"):
        # Velocity fields are rough: modes nearly tie in ratio.
        assert d[vel]["cr_o"] / d[vel]["cr_p"] < 1.3, vel
