"""Core codec throughput benchmark (standalone, no pytest).

Measures wall-clock compress/decompress throughput of every benchmarkable
kernel backend over the full ``mode x dtype x predictor_ndim`` matrix on a
64 MiB Miranda field, and writes ``benchmarks/results/BENCH_core.json``.
The headline configuration (outlier mode, float32, 1-D predictor, numpy
backend) is the one tracked against the recorded pre-vectorization
baseline of 72 MiB/s compress / 60 MiB/s decompress.

Backends come from the :mod:`repro.core.backends` registry.  The
``fused-python`` backend is excluded (it is the byte-identity test vehicle
for the fused kernels, ~1000x too slow to benchmark); ``numba`` is benched
only where numba is installed, and its results are recorded under its own
key so the regression gate only ever compares a backend against itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_core_throughput.py
    PYTHONPATH=src python benchmarks/bench_core_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_core_throughput.py \
        --quick --check benchmarks/results/BENCH_core.json

``--quick`` shrinks the field to 4 MiB for CI smoke runs.  ``--check``
compares the run's per-backend headline compress throughput against a
previously committed results file (the quick run compares against that
file's per-backend ``ci_reference`` section, measured with ``--quick`` on
the same machine that produced the full numbers) and exits non-zero on a
>30% regression.  A backend absent from the reference (e.g. numba on a
host where the committed file was recorded without it) is reported but
never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import compress, decompress  # noqa: E402
from repro.core.backends import available_backends  # noqa: E402
from repro.datasets import get_dataset  # noqa: E402

#: pre-rewrite kernel throughput on the 64 MiB float32 field (MiB/s)
BASELINE = {"compress_MiBps": 72.0, "decompress_MiBps": 60.0}

#: CI fails when compress throughput drops below this fraction of baseline
REGRESSION_FLOOR = 0.70

FULL_ELEMS = 1 << 24  # 16M float32 = 64 MiB
QUICK_ELEMS = 1 << 20  # 1M float32 = 4 MiB

HEADLINE = ("outlier", "float32", 1)

#: Registered backends that are never benchmarked: the pure-Python fused
#: kernels exist to keep the fused algorithm under byte-identity test on
#: hosts without numba, not to move bytes.
UNBENCHABLE = {"fused-python"}


def bench_backends() -> list:
    return [b for b in available_backends() if b not in UNBENCHABLE]


def make_field(nelems: int) -> np.ndarray:
    """A Miranda turbulence field replicated to exactly ``nelems`` floats."""
    f = get_dataset("Miranda").fields[0]
    scale = 1
    while int(np.prod((f.shape[0] * scale,) + tuple(f.shape[1:]))) < nelems:
        scale *= 2
    return f.generate(np.dtype(np.float32), scale=scale).reshape(-1)[:nelems].copy()


def shape_for(nelems: int, ndim: int):
    """Split ``nelems`` (a power of two) into an ``ndim``-cube-ish shape."""
    k = nelems.bit_length() - 1
    exps = [k // ndim + (1 if i < k % ndim else 0) for i in range(ndim)]
    return tuple(1 << e for e in exps)


def bench_one(
    data: np.ndarray, mode: str, ndim: int, block: int, repeats: int,
    backend: str = "numpy",
) -> dict:
    mib = data.nbytes / 2**20
    kw = dict(rel=1e-3, mode=mode, predictor_ndim=ndim, block=block,
              kernel_backend=backend)
    buf = compress(data, **kw)  # warmup (includes any JIT compilation)
    decompress(buf, kernel_backend=backend)
    best_c = best_d = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        buf = compress(data, **kw)
        best_c = min(best_c, time.perf_counter() - t0)
        t0 = time.perf_counter()
        out = decompress(buf, kernel_backend=backend)
        best_d = min(best_d, time.perf_counter() - t0)
    assert out.nbytes == data.nbytes, "roundtrip size mismatch"
    return {
        "kernel_backend": backend,
        "mode": mode,
        "dtype": str(data.dtype),
        "predictor_ndim": ndim,
        "block": block,
        "field_MiB": round(mib, 2),
        "compress_MiBps": round(mib / best_c, 1),
        "decompress_MiBps": round(mib / best_d, 1),
        "ratio": round(data.nbytes / buf.size, 2),
    }


def run_matrix(nelems: int, repeats: int, backend: str = "numpy") -> list:
    base = make_field(nelems)
    results = []
    for dtype in (np.float32, np.float64):
        field = base if dtype is np.float32 else base.astype(np.float64)
        for ndim in (1, 2, 3):
            block = 32 if ndim == 1 else 64  # 8x8 / 4x4x4 tiles need 64
            data = field if ndim == 1 else field.reshape(shape_for(nelems, ndim))
            for mode in ("plain", "outlier"):
                reps = repeats + 2 if (mode, str(np.dtype(dtype)), ndim) == HEADLINE else repeats
                r = bench_one(data, mode, ndim, block, reps, backend)
                results.append(r)
                print(
                    f"{backend:8s} {mode:8s} {r['dtype']:8s} ndim={ndim}  "
                    f"compress {r['compress_MiBps']:7.1f} MiB/s  "
                    f"decompress {r['decompress_MiBps']:7.1f} MiB/s  "
                    f"ratio {r['ratio']:.2f}"
                )
    return results


def headline_of(results: list, backend: str = "numpy") -> dict:
    [h] = [
        r
        for r in results
        if (r["mode"], r["dtype"], r["predictor_ndim"]) == HEADLINE
        and r.get("kernel_backend", "numpy") == backend
    ]
    return h


def _reference_headlines(ref: dict, quick: bool) -> dict:
    """Per-backend reference headline rows from a committed results file.

    Handles the pre-registry format (a flat ``ci_reference`` dict and
    untagged result rows) by attributing everything to ``"numpy"``.
    """
    if quick:
        ci = ref.get("ci_reference") or {}
        if "compress_MiBps" in ci:  # pre-registry flat format
            return {"numpy": ci}
        return {k: v for k, v in ci.items() if isinstance(v, dict)}
    out = {}
    for row in ref["results"]:
        if (row["mode"], row["dtype"], row["predictor_ndim"]) == HEADLINE:
            out[row.get("kernel_backend", "numpy")] = row
    return out


def check_regression(report: dict, baseline_path: str) -> int:
    ref = json.loads(Path(baseline_path).read_text())
    refs = _reference_headlines(ref, report["quick"])
    rc = 0
    for backend, head in sorted(report["headline_by_backend"].items()):
        ref_head = refs.get(backend)
        if not ref_head:
            # a backend with no same-backend reference is informational
            # only: the gate never compares jit numbers against numpy ones
            print(
                f"{backend}: no committed reference for this backend; "
                f"measured {head['compress_MiBps']:.1f} MiB/s (not gated)"
            )
            continue
        got = head["compress_MiBps"]
        floor = REGRESSION_FLOOR * ref_head["compress_MiBps"]
        if got < floor:
            print(
                f"REGRESSION [{backend}]: headline compress {got:.1f} MiB/s "
                f"is below {REGRESSION_FLOOR:.0%} of the committed baseline "
                f"{ref_head['compress_MiBps']:.1f} MiB/s (floor {floor:.1f})"
            )
            rc = 1
        else:
            print(
                f"regression check OK [{backend}]: {got:.1f} MiB/s >= "
                f"{floor:.1f} MiB/s ({REGRESSION_FLOOR:.0%} of committed "
                f"{ref_head['compress_MiBps']:.1f})"
            )
    return rc


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="4 MiB field (CI smoke)")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "BENCH_core.json"),
    )
    ap.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="exit non-zero if headline compress regresses >30%% vs this file",
    )
    args = ap.parse_args(argv)

    nelems = QUICK_ELEMS if args.quick else FULL_ELEMS
    backends = bench_backends()
    if "numba" not in backends:
        print("numba backend not available (numba not installed): numpy only")
    results = []
    for backend in backends:
        results += run_matrix(nelems, args.repeats, backend)
    head = headline_of(results, "numpy")
    report = {
        "generated_by": "benchmarks/bench_core_throughput.py",
        "numpy": np.__version__,
        "quick": bool(args.quick),
        "cpu_count": __import__("os").cpu_count(),
        "field": {"dataset": "Miranda", "elements": nelems},
        "repeats": args.repeats,
        "kernel_backends": backends,
        "results": results,
        "headline": head,
        "headline_by_backend": {b: headline_of(results, b) for b in backends},
        "baseline": dict(
            BASELINE, note="pre-vectorization kernels, 64 MiB float32 Miranda field"
        ),
        "speedup": {
            "compress": round(head["compress_MiBps"] / BASELINE["compress_MiBps"], 2),
            "decompress": round(
                head["decompress_MiBps"] / BASELINE["decompress_MiBps"], 2
            ),
        },
    }
    if "numba" not in backends:
        report["numba_note"] = (
            "numba was not installed on the recording host, so no jit "
            "reference exists; a numba-enabled multicore host records its "
            "own ci_reference entry and is gated only against itself"
        )
    if not args.quick:
        # quick-mode reference measured in the same run so CI smoke runs
        # have an apples-to-apples, same-backend number to regress against
        print("-- ci reference (quick field) --")
        report["ci_reference"] = {}
        for backend in backends:
            quick_results = run_matrix(QUICK_ELEMS, args.repeats, backend)
            qh = headline_of(quick_results, backend)
            report["ci_reference"][backend] = {
                "elements": QUICK_ELEMS,
                "compress_MiBps": qh["compress_MiBps"],
                "decompress_MiBps": qh["decompress_MiBps"],
            }

    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    print(
        f"headline: compress {head['compress_MiBps']:.1f} MiB/s "
        f"({report['speedup']['compress']:.2f}x baseline), "
        f"decompress {head['decompress_MiBps']:.1f} MiB/s "
        f"({report['speedup']['decompress']:.2f}x baseline)"
    )
    if args.check:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
