"""E-T5: Table V -- double-precision compression ratios.

Paper reference: at REL 1e-2, NWChem ~82.5 and S3D P 44.3 -> O 89.9-ish;
CUSZP2-O reaches ~3x CUSZP2-P on S3D at tight bounds thanks to global
smoothness (Section VI-A).
"""

from repro.harness import experiments as E

from conftest import run_once


def test_table5_double_precision_ratios(benchmark, save_result):
    result = run_once(benchmark, E.table5_double_cr)
    save_result(result)
    avg = result.data["avg"]

    for ds in E.DOUBLE_NAMES:
        # Monotone in the bound for both modes.
        for mode in ("CUSZP2-P", "CUSZP2-O"):
            seq = [avg[(mode, rel, ds)] for rel in (1e-2, 1e-3, 1e-4)]
            assert seq[0] > seq[1] > seq[2], (mode, ds)
        # Outlier mode never loses.
        for rel in E.RELS:
            assert avg[("CUSZP2-O", rel, ds)] >= avg[("CUSZP2-P", rel, ds)] * 0.999

    # S3D benefits clearly from the outlier design at tight bounds
    # (paper: ~3x at REL 1e-4; our synthetic fields reproduce the gap
    # direction with a smaller factor).
    assert avg[("CUSZP2-O", 1e-4, "S3D")] / avg[("CUSZP2-P", 1e-4, "S3D")] > 1.1
