"""E-T6: Table VI -- the rationale for 1-D processing.

Paper reference (RTM, outlier mode, 64-element tiles): 2-D/3-D Lorenzo
variants improve ratios at loose bounds (P3000: 27.53 -> ~34 at 1e-2) but
the benefit nearly vanishes for the dense field at conservative bounds
(P3000 at 1e-3: 11.19 vs 11.29; at 1e-4: 6.11 vs 6.22), while costing
>50% throughput -- hence cuSZp2's 1-D design.
"""

from repro.harness import experiments as E

from conftest import run_once


def test_table6_dimensionality(benchmark, save_result):
    result = run_once(benchmark, E.table6_dimensionality)
    save_result(result)
    cr = result.data["cr"]

    # Multi-dimensional prediction helps at the loose bound (our isotropic
    # synthetic blobs overstate the factor relative to the paper's ~1.2x;
    # see EXPERIMENTS.md).
    for field in ("P1000", "P2000", "P3000"):
        assert cr[(3, 1e-2, field)] > cr[(1, 1e-2, field)], field

    # The paper's core argument for 1-D processing: on the densest field
    # (P3000) the benefit declines as the bound tightens, because the
    # per-sample noise floor -- which no spatial predictor removes --
    # dominates every residual at conservative bounds.
    def benefit(rel, field="P3000"):
        return cr[(3, rel, field)] / cr[(1, rel, field)]

    assert benefit(1e-4) < benefit(1e-2)

    # Ratios stay monotone in the bound for every variant.
    for ndim in (1, 2, 3):
        for field in ("P1000", "P2000", "P3000"):
            seq = [cr[(ndim, rel, field)] for rel in (1e-2, 1e-3, 1e-4)]
            assert seq[0] > seq[1] > seq[2], (ndim, field)
