"""E-F18: Fig. 18 -- isosurface quality of cuSZp2 vs cuZFP at matched
compression ratios on the RTM fields.

Paper reference: at ratios ~64 (P1000) and ~30 (P2000), cuZFP "corrupts the
original images" while cuSZp2 "almost preserves identical features due to
error control"; at ~3 (P3000) both reconstruct with high quality.  We
quantify 'corruption' as the isosurface-preservation score (mean level-set
IoU; see repro.metrics.isosurface).
"""

from repro.harness import experiments as E

from conftest import run_once


def test_fig18_quality_at_matched_ratio(benchmark, save_result):
    result = run_once(benchmark, E.fig18_isosurface_quality)
    save_result(result)
    d = result.data

    # Aggressive ratios: cuSZp2's bounded error keeps surfaces intact while
    # cuZFP's fixed rate corrupts them.
    for field in ("P1000", "P2000"):
        assert d[field]["iso_cuszp2"] > d[field]["iso_cuzfp"], field
        assert d[field]["iso_cuszp2"] > 0.80, field

    # Conservative ratio (~3): both preserve the surfaces well.
    assert d["P3000"]["iso_cuszp2"] > 0.95
    assert d["P3000"]["iso_cuzfp"] > 0.90

    # The cuSZp2 streams actually hit the matched ratios (within 20%).
    for field, target in (("P1000", 64.0), ("P2000", 30.0), ("P3000", 3.0)):
        assert abs(d[field]["cuszp2_cr"] - target) / target < 0.25, field
