"""E-F16: Fig. 16 -- memory-bandwidth utilization across all datasets.

Paper reference (A100, Nsight): CUSZP2-P 1175.34 and CUSZP2-O 1103.45 GB/s
mean memory throughput, approaching the 1555 GB/s limit; baselines range
134.10 (FZ-GPU) to 410.90 GB/s (cuSZp).
"""

from repro.gpusim import A100_40GB
from repro.harness import experiments as E

from conftest import run_once


def test_fig16_bandwidth_utilization(benchmark, save_result):
    result = run_once(benchmark, E.fig16_memory_bandwidth)
    save_result(result)
    mean = result.data["mean"]

    # cuSZp2 approaches the hardware limit...
    for ours in ("cuszp2-p", "cuszp2-o"):
        assert mean[ours] > 0.55 * A100_40GB.dram_bw, ours
    # ...while every baseline stays far below it.
    for baseline in ("cuszp", "fzgpu", "cuzfp-8"):
        assert mean[baseline] < 0.40 * A100_40GB.dram_bw, baseline

    # Fig. 16's ordering.
    assert mean["cuszp2-p"] > mean["cuszp"] > mean["cuzfp-8"] > mean["fzgpu"]
