"""E-T3: Table III -- compression ratios of the error-bounded GPU
compressors across 9 datasets x 3 REL bounds.

Paper reference: CUSZP2-O achieves the best ratio in 24/27 cases; FZ-GPU
hits launch bugs (N.A.) on HACC/JetIn/Miranda/SynTruss; CUSZP2-P is
excluded because it matches cuSZp (<0.01% -- byte-identical here).
"""


from repro.baselines import PAPER_BUG_DATASETS
from repro.harness import experiments as E

from conftest import run_once


def test_table3_ratios(benchmark, save_result):
    result = run_once(benchmark, E.table3_compression_ratio)
    save_result(result)
    avg = result.data["avg"]

    datasets = E.SINGLE_NAMES
    rels = E.RELS

    # CUSZP2-O wins the large majority of (dataset, bound) cells against
    # every compressor that ran (paper: 24/27).
    wins = 0
    cases = 0
    for ds in datasets:
        for rel in rels:
            ours = avg[("CUSZP2-O", rel, ds)]
            rivals = [avg[(c, rel, ds)] for c in ("FZ-GPU", "cuSZp")]
            rivals = [r for r in rivals if r is not None]
            cases += 1
            if all(ours >= r for r in rivals):
                wins += 1
    assert wins / cases > 0.8, f"CUSZP2-O won only {wins}/{cases}"

    # CUSZP2-O never loses to cuSZp (Plain-FLE is a strict subset).
    for ds in datasets:
        for rel in rels:
            assert avg[("CUSZP2-O", rel, ds)] >= avg[("cuSZp", rel, ds)] * 0.999, (ds, rel)

    # FZ-GPU N.A. cells match the paper's bug list.
    for ds in datasets:
        is_na = avg[("FZ-GPU", rels[0], ds)] is None
        assert is_na == (ds.lower() in PAPER_BUG_DATASETS), ds

    # Larger bounds compress more, for every dataset.
    for ds in datasets:
        seq = [avg[("CUSZP2-O", rel, ds)] for rel in (1e-2, 1e-3, 1e-4)]
        assert seq[0] > seq[1] > seq[2], ds

    # JetIn is the most compressible dataset at every bound.
    for rel in rels:
        jet = avg[("CUSZP2-O", rel, "JetIn")]
        others = [avg[("CUSZP2-O", rel, ds)] for ds in datasets if ds != "JetIn"]
        assert jet > max(others), rel

    # Outlier gain is large exactly where the paper reports it.
    gain = lambda ds: avg[("CUSZP2-O", 1e-3, ds)] / avg[("cuSZp", 1e-3, ds)]
    for smooth in ("HACC", "Miranda", "CESM-ATM"):
        assert gain(smooth) > 1.25, smooth
    for unsmooth in ("SynTruss", "JetIn", "RTM"):
        assert gain(unsmooth) < 1.15, unsmooth
