"""E-AB: Section VI-E -- breakdown of cuSZp2's throughput gains.

Paper reference: disabling each factor individually attributes 56.23% of
the gain to memory optimization and 41.29% to latency hiding (inline PTX
and loop unrolling contribute <3% and are not modeled).
"""

from repro.harness import experiments as E

from conftest import run_once


def test_ablation_gain_attribution(benchmark, save_result):
    result = run_once(benchmark, E.ablation_breakdown)
    save_result(result)
    mem = result.data["memory_pct"]
    sync = result.data["latency_pct"]

    # Both designs contribute substantially, memory optimization the most.
    assert 30 < mem < 80
    assert 15 < sync < 65
    assert mem + sync > 70  # together they explain most of the gain
