"""E-T1: Table I -- the design-feature matrix of GPU lossy compressors."""

from repro.harness import experiments as E

from conftest import run_once


def test_table1_feature_matrix(benchmark, save_result):
    result = run_once(benchmark, E.table1_features)
    save_result(result)
    feats = result.data["features"]
    # cuSZp2 is the only compressor with every design property.
    full = [name for name, f in feats.items() if all(v for v in f.values())]
    assert full == ["CUSZP2"]
    # FZ-GPU and cuSZp are pure-GPU but lack latency control (Table I).
    for name in ("FZ-GPU", "cuSZp"):
        assert feats[name]["Pure GPU Design?"] is True
        assert feats[name]["Latency Control?"] is False
    # The hybrids are not pure GPU.
    for name in ("cuSZ", "MGARD-GPU", "cuSZx"):
        assert feats[name]["Pure GPU Design?"] is False
