"""E-F19: Fig. 19 -- double-precision throughput.

Paper reference (A100): CUSZP2-P 612.83 / 780.33 GB/s and CUSZP2-O
628.54 / 809.71 GB/s (compression/decompression), ~2x the single-precision
figures because the per-element conversion cost is spread over twice the
bytes.
"""

from repro.harness import experiments as E

from conftest import run_once


def test_fig19_double_precision_throughput(benchmark, save_result):
    result = run_once(benchmark, E.fig19_double_precision)
    save_result(result)

    # Average double-precision compression in the paper's band.
    assert 450 < result.data["avg_compress"] < 900
    assert 550 < result.data["avg_decompress"] < 1300

    # ~2x the single-precision average (Section VI-A's headline).
    f32 = E.fig14_throughput(datasets=("RTM", "Miranda"))  # quick f32 reference
    f32_avg = f32.data["averages"]["compress"]["cuszp2-p"]
    ratio = result.data["avg_compress"] / f32_avg
    assert 1.4 < ratio < 2.6, ratio

    # Decompression still beats compression.
    assert result.data["avg_decompress"] > result.data["avg_compress"]
