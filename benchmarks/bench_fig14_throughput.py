"""E-F14: Fig. 14 -- the main end-to-end throughput evaluation.

Paper reference averages (A100): CUSZP2-P 334.91 / 538.27 GB/s and
CUSZP2-O 329.94 / 597.29 GB/s for compression / decompression; other GPU
compressors range 107.10 (cuZFP compression) to 188.74 GB/s (cuSZp
decompression).  JetIn decompression exceeds 1 TB/s via the zero-block
flush.  Observation I: ~2.85x cuZFP, ~2.11x FZ-GPU, ~2.03x cuSZp.
"""

import numpy as np

from repro.harness import experiments as E

from conftest import run_once


def test_fig14_main_throughput(benchmark, save_result):
    result = run_once(benchmark, E.fig14_throughput)
    save_result(result)
    avg = result.data["averages"]

    # cuSZp2 averages land in the paper's band.
    assert 250 < avg["compress"]["cuszp2-p"] < 450
    assert 400 < avg["decompress"]["cuszp2-p"] < 750
    assert 400 < avg["decompress"]["cuszp2-o"] < 800

    # Observation I's speedups (who wins, by roughly what factor).
    for baseline, lo, hi in (("cuszp", 1.4, 3.2), ("fzgpu", 1.4, 3.2), ("cuzfp", 2.0, 4.5)):
        ratio = avg["compress"]["cuszp2-p"] / avg["compress"][baseline]
        assert lo < ratio < hi, (baseline, ratio)

    # Decompression beats compression for cuSZp2 (no sizing loop).
    assert avg["decompress"]["cuszp2-p"] > avg["compress"]["cuszp2-p"]
    assert avg["decompress"]["cuszp2-o"] > avg["compress"]["cuszp2-o"]

    # JetIn decompression approaches/exceeds 1 TB/s (zero-block flush).
    jet = result.data["decompress"]["JetIn"]
    assert max(jet["cuszp2-p"], jet["cuszp2-o"]) > 800

    # Every dataset: cuSZp2 compresses faster than every baseline.
    for ds, series in result.data["compress"].items():
        ours = max(series["cuszp2-p"], series["cuszp2-o"])
        for baseline in ("cuszp", "fzgpu", "cuzfp"):
            if np.isfinite(series[baseline]):
                assert ours > series[baseline], (ds, baseline)
