"""E-F17: Fig. 17 -- decoupled lookback vs plain chained-scan.

Paper reference (A100): the fine-tuned decoupled lookback averages
846.85 GB/s synchronization throughput, 2.41x the single-pass plain
chained-scan.
"""

from repro.harness import experiments as E

from conftest import run_once


def test_fig17_sync_throughput(benchmark, save_result):
    result = run_once(benchmark, E.fig17_lookback)
    save_result(result)

    mean_l = result.data["mean_lookback"]
    mean_c = result.data["mean_chained"]
    # Averages in the paper's band; speedup near 2.41x.
    assert 650 < mean_l < 1050
    assert 250 < mean_c < 480
    assert 1.9 < mean_l / mean_c < 3.1

    # Lookback wins on every dataset.
    for ds, vals in result.data["per_dataset"].items():
        assert vals["lookback"] > vals["chained"], ds
