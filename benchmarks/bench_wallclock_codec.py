"""E-WC: wall-clock speed of the functional NumPy codecs (engineering
benchmark -- no paper counterpart; the paper's GB/s figures are simulated
device throughput, these are this library's real speeds)."""

import numpy as np
import pytest

from repro import compress, decompress
from repro.baselines import FZGPU
from repro.core.quantize import ErrorBound
from repro.datasets import get_dataset

N = 1 << 22  # 4M elements / 16 MiB


@pytest.fixture(scope="module")
def field():
    return get_dataset("Miranda").fields[0].generate(np.dtype(np.float32), scale=7)[:N]


@pytest.fixture(scope="module")
def smooth_stream(field):
    return compress(field, rel=1e-3, mode="outlier")


def _report(benchmark, nbytes):
    benchmark.extra_info["MB/s"] = round(nbytes / benchmark.stats["mean"] / 1e6, 1)


def test_compress_plain_wallclock(benchmark, field):
    buf = benchmark(lambda: compress(field, rel=1e-3, mode="plain"))
    _report(benchmark, field.nbytes)
    assert buf.size < field.nbytes


def test_compress_outlier_wallclock(benchmark, field):
    buf = benchmark(lambda: compress(field, rel=1e-3, mode="outlier"))
    _report(benchmark, field.nbytes)
    assert buf.size < field.nbytes


def test_decompress_wallclock(benchmark, field, smooth_stream):
    out = benchmark(lambda: decompress(smooth_stream))
    _report(benchmark, field.nbytes)
    assert out.size == field.size


def test_fzgpu_compress_wallclock(benchmark, field):
    codec = FZGPU(ErrorBound.relative(1e-3))
    buf = benchmark(lambda: codec.compress(field))
    _report(benchmark, field.nbytes)
    assert buf.size < field.nbytes


def test_random_access_wallclock(benchmark, smooth_stream):
    from repro import RandomAccessor

    ra = RandomAccessor(smooth_stream)
    idx = np.arange(0, ra.nblocks, max(1, ra.nblocks // 256))

    def access():
        return ra.decode_blocks(idx)

    out = benchmark(access)
    assert out.shape[0] == idx.size
