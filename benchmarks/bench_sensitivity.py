"""E-SA: robustness of the paper's conclusions to calibration error.

The performance model's constants were fitted against the paper's A100
numbers; a fair question is whether the *conclusions* (cuSZp2 wins, by
about 2x; lookback beats chained scan) depend on those exact values.  This
bench perturbs the most influential constants by +-25% and asserts every
headline ordering survives -- i.e., the shape claims are properties of the
design differences, not of the calibration point.
"""

import pytest

from repro.gpusim import A100_40GB
from repro.gpusim import calibration as cal
from repro.gpusim import pipelines as P
from repro.gpusim.access import PATTERN_COSTS, Pattern, PatternCost
from repro.harness import paper_field_bytes, run_field, scale_artifacts
from repro.harness import tables



def _clear_caches():
    P.inkernel_sync_s.cache_clear()
    P.standalone_scan_timeline.cache_clear()


def _orderings():
    """Evaluate the headline orderings under the current constants."""
    run = run_field("RTM", "P3000", "cuszp2-o", 1e-3)
    art = scale_artifacts(run.artifacts, paper_field_bytes("RTM"))
    n = art.input_bytes
    ours = P.cuszp2_compression(art, A100_40GB).end_to_end_throughput(A100_40GB, n)
    cuszp = P.cuszp_compression(art, A100_40GB).end_to_end_throughput(A100_40GB, n)
    fz = P.fzgpu_compression(art, A100_40GB).end_to_end_throughput(A100_40GB, n)
    look = P.standalone_scan_timeline(art.nelems, 4, A100_40GB, "lookback")
    chain = P.standalone_scan_timeline(art.nelems, 4, A100_40GB, "chained")
    return {
        "ours": ours,
        "vs_cuszp": ours / cuszp,
        "vs_fzgpu": ours / fz,
        "scan_speedup": look.throughput_gbs(n) / chain.throughput_gbs(n),
    }


PERTURBATIONS = [
    ("baseline", None, 1.0),
    ("quant ops", "QUANT_OPS_PER_ELEM", 0.75),
    ("quant ops", "QUANT_OPS_PER_ELEM", 1.25),
    ("pack ops", "PACK_OPS_PER_PAYLOAD_BYTE", 0.75),
    ("pack ops", "PACK_OPS_PER_PAYLOAD_BYTE", 1.25),
    ("flag latency", "T_FLAG_S", 0.5),
    ("flag latency", "T_FLAG_S", 1.5),
    ("scan local util", "SCAN_LOCAL_UTIL", 0.8),
    ("scan local util", "SCAN_LOCAL_UTIL", 1.2),
]


def test_conclusions_survive_calibration_error(benchmark, results_dir, monkeypatch):
    def sweep():
        rows = []
        for label, attr, factor in PERTURBATIONS:
            with pytest.MonkeyPatch.context() as mp:
                if attr is not None:
                    mp.setattr(cal, attr, getattr(cal, attr) * factor)
                _clear_caches()
                o = _orderings()
            _clear_caches()
            rows.append((f"{label} x{factor}", o["ours"], o["vs_cuszp"], o["vs_fzgpu"], o["scan_speedup"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = tables.series_table(
        "Sensitivity: headline orderings under +-25% calibration error",
        rows,
        ("perturbation", "cuszp2 GB/s", "vs cuSZp", "vs FZ-GPU", "scan speedup"),
    )
    (results_dir / "sensitivity.txt").write_text(text + "\n")
    print("\n" + text)

    for label, ours, vs_cuszp, vs_fz, scan in rows:
        # Every headline conclusion survives every perturbation:
        assert vs_cuszp > 1.3, label  # cuSZp2 clearly beats cuSZp
        assert vs_fz > 1.3, label  # ... and FZ-GPU
        # Lookback always wins; its *margin* scales with the flag round-trip
        # cost (halving the L2 latency halves the chain it decouples).
        assert scan > 1.1, label
        assert 150 < ours < 800, label  # and stays in a plausible band


def test_pattern_cost_perturbation(monkeypatch):
    # Derating the vectorized pattern's utilization by 15% must not flip
    # the Fig. 16 ordering.
    orig = PATTERN_COSTS[Pattern.VECTORIZED]
    monkeypatch.setitem(
        PATTERN_COSTS, Pattern.VECTORIZED, PatternCost(orig.amplification, orig.utilization * 0.85)
    )
    _clear_caches()
    try:
        o = _orderings()
        assert o["vs_cuszp"] > 1.2
        assert o["vs_fzgpu"] > 1.2
    finally:
        _clear_caches()
