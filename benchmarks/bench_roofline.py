"""E-RF: roofline placement of every compressor's compression kernel.

Quantifies Section IV-B: existing pure-GPU compressors sit deep under the
rooflines (low achieved fractions), while cuSZp2's vectorized kernel climbs
to its roof -- its intensity lands just past the ridge, making it (barely)
compute-bound, which is why its e2e throughput saturates near 335 GB/s
instead of copy speed.
"""

from repro.gpusim import A100_40GB
from repro.gpusim import pipelines as P
from repro.gpusim.roofline import place, render, ridge_intensity
from repro.harness import paper_field_bytes, run_field, scale_artifacts



def _points():
    run = run_field("RTM", "P3000", "cuszp2-o", 1e-3)
    art = scale_artifacts(run.artifacts, paper_field_bytes("RTM"))
    pipes = {
        "cuszp2-compress": P.cuszp2_compression(art, A100_40GB),
        "cuszp-compress": P.cuszp_compression(art, A100_40GB),
        "fzgpu (3 kernels)": P.fzgpu_compression(art, A100_40GB),
        "cuzfp-encode": P.cuzfp_compression(art, A100_40GB),
    }
    points = {}
    for name, pipe in pipes.items():
        # Fuse multi-kernel pipelines for a single placement.
        from repro.gpusim import merge

        fused = merge(name, *pipe.kernels)
        points[name] = place(fused, A100_40GB)
    return points


def test_roofline_placement(benchmark, results_dir):
    points = benchmark.pedantic(_points, rounds=1, iterations=1)
    text = render(list(points.values()), A100_40GB)
    (results_dir / "roofline.txt").write_text(text + "\n")
    print("\n" + text)

    ours = points["cuszp2-compress"]
    ridge = ridge_intensity(A100_40GB)

    # cuSZp2 runs close to its roof and sits just past the ridge: the
    # balanced design point (more arithmetic would starve, more traffic
    # would stall).
    assert ours.efficiency > 0.85
    assert ours.bound == "compute"
    assert ridge < ours.intensity < 3 * ridge

    # cuZFP also saturates a roof -- but a *wasteful* one: its transform
    # burns ~3x the ops per byte, so its data-throughput ceiling
    # (op_rate / intensity) is ~3x lower despite 'perfect' efficiency.
    zfp = points["cuzfp-encode"]
    assert zfp.intensity > 2.5 * ours.intensity
    assert A100_40GB.op_rate / zfp.intensity < 0.5 * (A100_40GB.op_rate / ours.intensity)

    # FZ-GPU is memory-bound and doesn't even reach its memory roof
    # (multi-kernel launches + atomic serialization).
    fz = points["fzgpu (3 kernels)"]
    assert fz.bound == "memory"
    assert fz.efficiency < 0.75

    # cuSZp's strided accesses double its DRAM bytes, halving its intensity
    # relative to the vectorized kernel with the same arithmetic.
    assert points["cuszp-compress"].intensity < 0.8 * ours.intensity
