"""E-F21: Fig. 21 -- compatibility with lower-end NVIDIA GPUs.

Paper reference (RTM P3000, averaged over bounds): cuSZp2 reaches
232.45 / 405.09 GB/s on the RTX 3090 and 180.94 / 329.62 GB/s on the RTX
3080, staying ~2x ahead of every baseline on each device.
"""

from repro.harness import experiments as E

from conftest import run_once


def test_fig21_lower_end_gpus(benchmark, save_result):
    result = run_once(benchmark, E.fig21_other_gpus)
    save_result(result)
    d = result.data

    # Device ordering holds for cuSZp2 in both directions.
    for i in (0, 1):
        assert (
            d["A100-40GB"]["cuszp2-o"][i]
            > d["RTX-3090"]["cuszp2-o"][i]
            > d["RTX-3080"]["cuszp2-o"][i]
        )

    # Levels near the paper's 3090/3080 measurements.
    assert 170 < d["RTX-3090"]["cuszp2-o"][0] < 320
    assert 140 < d["RTX-3080"]["cuszp2-o"][0] < 270

    # The ~2x advantage is generic across devices (Section VI-C).
    for dev in ("RTX-3090", "RTX-3080"):
        for baseline in ("cuszp", "fzgpu"):
            assert d[dev]["cuszp2-o"][0] / d[dev][baseline][0] > 1.4, (dev, baseline)
