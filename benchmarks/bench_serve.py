"""E-SERVE: baseline throughput of the compression service (engineering
benchmark -- no paper counterpart; cuSZp2's end-to-end pitch realized as a
concurrent service).

Runs the closed-loop serve-bench campaign at 1 worker and N workers over
the process backend and records both reports (plus the host's cpu_count,
so a reader can judge whether a speedup was physically possible) into
``benchmarks/results/BENCH_serve.json``.  On a multi-core host the
N-worker run should beat 1 worker on wall time; on a 1-core host the
numbers document that baseline honestly.

Run with::

    pytest benchmarks/bench_serve.py --benchmark-only
"""

import json
import os
from pathlib import Path

from repro.serve.bench import BenchConfig, run_serve_bench

RESULTS_DIR = Path(__file__).parent / "results"

SIZE_MB = 64.0
CHUNK_MB = 8.0
REQUESTS = 4
NWORKERS = 4


def _campaign(workers: int) -> dict:
    return run_serve_bench(
        BenchConfig(
            size_mb=SIZE_MB,
            workers=workers,
            backend="process",
            requests=REQUESTS,
            clients=2,
            chunk_mb=CHUNK_MB,
            distinct=2,
            dataset="Miranda",  # registry data, not synthetic noise
        )
    )


def test_serve_baseline_1_vs_n_workers(benchmark):
    one = _campaign(1)
    many = benchmark(lambda: _campaign(NWORKERS))
    assert not one["errors"] and not many["errors"]

    speedup = one["wall_s"] / many["wall_s"] if many["wall_s"] else 0.0
    doc = {
        "field_mb": SIZE_MB,
        "chunk_mb": CHUNK_MB,
        "requests": REQUESTS,
        "cpu_count": os.cpu_count(),
        "workers_1": one,
        f"workers_{NWORKERS}": many,
        "speedup_n_over_1": round(speedup, 3),
        "note": (
            f"{NWORKERS}-worker speedup over 1 worker requires >= {NWORKERS} "
            "cores; on smaller hosts this file is an honest single-core "
            "baseline (see cpu_count)."
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nserve baseline: 1 worker {one['wall_s']:.2f}s, "
          f"{NWORKERS} workers {many['wall_s']:.2f}s "
          f"(speedup {speedup:.2f}x on {os.cpu_count()} cpu) -> {out}")

    if (os.cpu_count() or 1) >= NWORKERS:
        assert many["wall_s"] < one["wall_s"], (
            f"{NWORKERS} workers ({many['wall_s']:.2f}s) not faster than "
            f"1 worker ({one['wall_s']:.2f}s) on a {os.cpu_count()}-core host"
        )
