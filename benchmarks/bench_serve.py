"""E-SERVE: service throughput across workers x backend x transport.

Standalone (no pytest).  Runs the closed-loop serve-bench campaign over a
1/2/4/8-worker x thread/process x pickle/shm matrix on a 64 MiB Miranda
field and writes ``benchmarks/results/BENCH_serve.json``.  Each cell
records wall time, throughput, and the per-stage transport byte split
(dispatch/result x shm/pickled, plus fallback count), so the file shows
exactly how much payload the shm descriptors took off the pickled pool
boundary.

cuSZp2's headline on GPU comes from eliminating data movement (one fused
pass instead of repeated global-memory round trips); the shm transport is
the serving-layer analogue -- chunk payloads stay in shared segments and
only descriptors cross the process boundary.  On a multi-core host the
4-worker process/shm cell should beat the committed process/pickle
scaling factor; on a 1-core host the file documents that baseline
honestly (see ``cpu_count``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --quick --check benchmarks/results/BENCH_serve.json

``--quick`` shrinks the field to 8 MiB and the matrix to the CI smoke
cells (1 and 4 process workers, both transports).  ``--check`` compares
each transport's 4-worker process throughput against the committed
file's per-transport ``ci_reference`` (quick mode) or matrix cell (full
mode) and exits non-zero on a >30% regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.bench import BenchConfig, run_serve_bench  # noqa: E402

#: the pre-shm baseline this file existed to beat: 4 process workers over
#: the pickled transport reached 1.462x over 1 worker (1-core recording host)
PICKLE_BASELINE_SPEEDUP = 1.462

REGRESSION_FLOOR = 0.70

WORKER_COUNTS = (1, 2, 4, 8)
BACKENDS = ("thread", "process")
TRANSPORTS = ("pickle", "shm")

FULL_MB = 64.0
QUICK_MB = 8.0
CHUNK_MB_FULL = 8.0
CHUNK_MB_QUICK = 1.0
REQUESTS = 4

#: the cell whose throughput is tracked by the regression gate
HEADLINE_WORKERS = 4
HEADLINE_BACKEND = "process"


def run_cell(workers: int, backend: str, transport: str,
             size_mb: float, chunk_mb: float) -> dict:
    rep = run_serve_bench(
        BenchConfig(
            size_mb=size_mb,
            workers=workers,
            backend=backend,
            transport=transport,
            requests=REQUESTS,
            clients=2,
            chunk_mb=chunk_mb,
            distinct=2,
            dataset="Miranda",  # registry data, not synthetic noise
        )
    )
    cell = {
        "workers": workers,
        "backend": backend,
        "transport": transport,
        "wall_s": round(rep["wall_s"], 3),
        "throughput_mbs": round(rep["throughput_mbs"], 2),
        "chunks_per_request": rep["chunks_per_request"],
        "transport_bytes": {
            k: int(v) for k, v in rep["transport_bytes"].items()
        },
        "errors": rep["errors"],
    }
    tb = cell["transport_bytes"]
    print(
        f"{backend:8s} {transport:7s} workers={workers}  "
        f"wall {cell['wall_s']:7.2f}s  {cell['throughput_mbs']:7.1f} MB/s  "
        f"shm {tb['dispatch_shm'] + tb['result_shm']:>12d} B  "
        f"pickled {tb['dispatch_pickled'] + tb['result_pickled']:>12d} B"
    )
    return cell


def _find(cells, workers, backend, transport):
    for c in cells:
        if (c["workers"], c["backend"], c["transport"]) == (
            workers, backend, transport
        ):
            return c
    return None


def scaling_summary(cells) -> dict:
    """Per (backend, transport): throughput by worker count + 4/1 speedup."""
    out = {}
    for backend in BACKENDS:
        for transport in TRANSPORTS:
            series = {
                str(w): c["wall_s"]
                for w in WORKER_COUNTS
                if (c := _find(cells, w, backend, transport)) is not None
            }
            if not series:
                continue
            entry = {"wall_s_by_workers": series}
            one = _find(cells, 1, backend, transport)
            four = _find(cells, 4, backend, transport)
            if one and four and four["wall_s"]:
                entry["speedup_4_over_1"] = round(
                    one["wall_s"] / four["wall_s"], 3
                )
            out[f"{backend}/{transport}"] = entry
    return out


def _headline(cells, transport):
    return _find(cells, HEADLINE_WORKERS, HEADLINE_BACKEND, transport)


def check_regression(report: dict, baseline_path: str) -> int:
    ref = json.loads(Path(baseline_path).read_text())
    rc = 0
    for transport in TRANSPORTS:
        head = _headline(report["matrix"], transport)
        if head is None:
            continue
        if report["quick"]:
            ref_head = (ref.get("ci_reference") or {}).get(transport)
        else:
            ref_head = _headline(ref.get("matrix", []), transport)
        if not ref_head:
            print(
                f"{transport}: no committed reference; measured "
                f"{head['throughput_mbs']:.1f} MB/s (not gated)"
            )
            continue
        got = head["throughput_mbs"]
        floor = REGRESSION_FLOOR * ref_head["throughput_mbs"]
        if got < floor:
            print(
                f"REGRESSION [{transport}]: {HEADLINE_WORKERS}-worker "
                f"{HEADLINE_BACKEND} throughput {got:.1f} MB/s is below "
                f"{REGRESSION_FLOOR:.0%} of the committed "
                f"{ref_head['throughput_mbs']:.1f} MB/s (floor {floor:.1f})"
            )
            rc = 1
        else:
            print(
                f"regression check OK [{transport}]: {got:.1f} MB/s >= "
                f"{floor:.1f} MB/s ({REGRESSION_FLOOR:.0%} of committed "
                f"{ref_head['throughput_mbs']:.1f})"
            )
    return rc


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="8 MiB field, CI smoke cells only")
    ap.add_argument(
        "--out",
        default=str(Path(__file__).parent / "results" / "BENCH_serve.json"),
    )
    ap.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="exit non-zero if headline throughput regresses >30%% vs this file",
    )
    args = ap.parse_args(argv)

    size_mb = QUICK_MB if args.quick else FULL_MB
    chunk_mb = CHUNK_MB_QUICK if args.quick else CHUNK_MB_FULL
    if args.quick:
        grid = [(w, HEADLINE_BACKEND, t)
                for t in TRANSPORTS for w in (1, HEADLINE_WORKERS)]
    else:
        grid = [(w, b, t)
                for b in BACKENDS for t in TRANSPORTS for w in WORKER_COUNTS]

    cells = [run_cell(w, b, t, size_mb, chunk_mb) for (w, b, t) in grid]
    bad = [c for c in cells if c["errors"]]
    if bad:
        for c in bad:
            print(f"ERRORS in {c['backend']}/{c['transport']} "
                  f"workers={c['workers']}: {c['errors']}")
        return 1

    report = {
        "generated_by": "benchmarks/bench_serve.py",
        "quick": bool(args.quick),
        "cpu_count": os.cpu_count(),
        "field_mb": size_mb,
        "chunk_mb": chunk_mb,
        "requests": REQUESTS,
        "matrix": cells,
        "scaling": scaling_summary(cells),
        "pickle_baseline_speedup_4_over_1": PICKLE_BASELINE_SPEEDUP,
        "shm_speedup_over_pickle": {
            f"{b}/{w}w": round(p["wall_s"] / s["wall_s"], 3)
            for b in BACKENDS
            for w in WORKER_COUNTS
            if (p := _find(cells, w, b, "pickle"))
            and (s := _find(cells, w, b, "shm"))
            and s["wall_s"]
        },
        "note": (
            "speedup_4_over_1 requires >= 4 cores to show real scaling; on "
            "smaller hosts this file is an honest single-core baseline (see "
            "cpu_count).  transport_bytes splits payload traffic into shm "
            "descriptors vs pickled queue bytes per stage."
        ),
    }
    if not args.quick:
        # quick-mode reference measured in the same run so CI smoke runs
        # have an apples-to-apples, per-transport number to regress against
        print("-- ci reference (quick field) --")
        report["ci_reference"] = {}
        for transport in TRANSPORTS:
            cell = run_cell(HEADLINE_WORKERS, HEADLINE_BACKEND, transport,
                            QUICK_MB, CHUNK_MB_QUICK)
            if cell["errors"]:
                print(f"ERRORS in ci_reference/{transport}: {cell['errors']}")
                return 1
            report["ci_reference"][transport] = {
                "field_mb": QUICK_MB,
                "workers": HEADLINE_WORKERS,
                "backend": HEADLINE_BACKEND,
                "throughput_mbs": cell["throughput_mbs"],
                "wall_s": cell["wall_s"],
            }

    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key, entry in report["scaling"].items():
        if "speedup_4_over_1" in entry:
            print(f"scaling {key}: {entry['speedup_4_over_1']:.3f}x "
                  f"(pickled baseline {PICKLE_BASELINE_SPEEDUP}x)")
    if args.check:
        return check_regression(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
